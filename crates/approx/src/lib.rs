//! # presky-approx — approximate skyline-probability algorithms
//!
//! The approximation layer of *"Skyline Probability over Uncertain
//! Preferences"* (EDBT 2013):
//!
//! * [`sampler`] — `Sam`, the Monte-Carlo estimator of Algorithm 2 with
//!   lazy sampling and the sorted checking sequence;
//! * [`samplus`] — `Sam+`, sampling after absorption/partition
//!   preprocessing;
//! * [`bounds`] — Hoeffding sample-size arithmetic (Theorem 2);
//! * [`sac`] — the independent-object-dominance baseline of Sacharidis et
//!   al., wrong in general and implemented as the comparison target;
//! * [`a1`], [`a2`] — the two tentative approximations the paper evaluates
//!   and rejects in Figure 6;
//! * [`karp_luby`] — a Karp–Luby importance sampler over the coin view
//!   (relative-error extension; DESIGN.md ablation X1).
//!
//! ```
//! use presky_core::prelude::*;
//! use presky_approx::prelude::*;
//!
//! // Observation of Section 1: truth is sky(P1) = 1/2; Sac claims 3/8.
//! let table = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
//! let prefs = TablePreferences::with_default(PrefPair::half());
//!
//! let sac = sky_sac(&table, &prefs, ObjectId(0)).unwrap();
//! assert!((sac - 0.375).abs() < 1e-12);
//!
//! let sam = sky_sam(&table, &prefs, ObjectId(0), SamOptions::with_samples(40_000, 1)).unwrap();
//! assert!((sam.estimate - 0.5).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod a1;
pub mod a2;
pub mod bounds;
pub mod error;
pub mod karp_luby;
pub mod sac;
pub mod sampler;
pub mod samplus;
pub mod sprt;

/// Commonly used names.
pub mod prelude {
    pub use crate::a1::{a1_sweep, sky_a1, A1Outcome};
    pub use crate::a2::{a2_sweep, sky_a2, sky_a2_big, A2Outcome};
    pub use crate::bounds::{hoeffding_delta, hoeffding_epsilon, hoeffding_samples};
    pub use crate::error::ApproxError;
    pub use crate::karp_luby::{
        sky_karp_luby, sky_karp_luby_view, KarpLubyOptions, KarpLubyOutcome,
    };
    pub use crate::sac::{sac_is_exact, sky_sac, sky_sac_view};
    pub use crate::sampler::{
        sky_sam, sky_sam_antithetic, sky_sam_antithetic_view, sky_sam_view, sky_sam_view_with,
        SamOptions, SamOutcome, SamScratch,
    };
    pub use crate::samplus::{sky_sam_plus, sky_sam_plus_view, SamPlusOptions, SamPlusOutcome};
    pub use crate::sprt::{
        sky_threshold_test, sky_threshold_test_view, SprtOptions, SprtOutcome, ThresholdDecision,
    };
}
