//! `A1` — the "important objects only" tentative approximation (Fig. 6a).
//!
//! Section 4 of the paper evaluates two immediate ideas before settling on
//! Monte-Carlo sampling. A1 computes `sky(O)` exactly, but over only the
//! `k` attackers with the highest dominance probabilities. Ignoring
//! attackers can only *raise* the computed probability (fewer ways to be
//! dominated), so A1 overestimates monotonically in the ignored mass; the
//! paper found it "can not guarantee the quality of approximate answers"
//! and needed over an hour to reach 25 important objects — which the
//! Figure 6(a) bench reproduces in shape.

use std::time::{Duration, Instant};

use presky_core::coins::CoinView;

use presky_exact::det::{sky_det_view, DetOptions};

use crate::error::Result;

/// Outcome of an A1 evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A1Outcome {
    /// The (over-)estimate of `sky`.
    pub estimate: f64,
    /// Number of attackers actually used.
    pub k_used: usize,
    /// Joint probabilities computed by the exact engine on the subset.
    pub joints_computed: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Exact inclusion–exclusion over the `k` most dominating attackers.
pub fn sky_a1(view: &CoinView, k: usize, det: DetOptions) -> Result<A1Outcome> {
    let start = Instant::now();
    let order = view.checking_sequence();
    let k_used = k.min(order.len());
    let sub = view.restrict(&order[..k_used]);
    let out = sky_det_view(&sub, det)?;
    Ok(A1Outcome {
        estimate: out.sky,
        k_used,
        joints_computed: out.joints_computed,
        elapsed: start.elapsed(),
    })
}

/// Evaluate A1 at several `k` values (the Figure 6(a) sweep).
pub fn a1_sweep(view: &CoinView, ks: &[usize], det: DetOptions) -> Result<Vec<A1Outcome>> {
    ks.iter().map(|&k| sky_a1(view, k, det)).collect()
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::table::Table;
    use presky_core::types::ObjectId;

    use super::*;

    fn example1_view() -> CoinView {
        let t =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        let p = TablePreferences::with_default(PrefPair::half());
        CoinView::build(&t, &p, ObjectId(0)).unwrap()
    }

    #[test]
    fn full_k_is_exact() {
        let view = example1_view();
        let out = sky_a1(&view, 4, DetOptions::default()).unwrap();
        assert!((out.estimate - 3.0 / 16.0).abs() < 1e-12);
        assert_eq!(out.k_used, 4);
    }

    #[test]
    fn estimates_decrease_monotonically_in_k() {
        let view = example1_view();
        let sweep = a1_sweep(&view, &[0, 1, 2, 3, 4], DetOptions::default()).unwrap();
        for w in sweep.windows(2) {
            assert!(
                w[0].estimate >= w[1].estimate - 1e-12,
                "A1 overestimates shrink as more attackers are included"
            );
        }
        assert_eq!(sweep[0].estimate, 1.0, "k = 0 ignores everyone");
    }

    #[test]
    fn k_larger_than_n_saturates() {
        let view = example1_view();
        let out = sky_a1(&view, 99, DetOptions::default()).unwrap();
        assert_eq!(out.k_used, 4);
        assert!((out.estimate - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn always_at_least_the_true_sky() {
        // A1 is a one-sided (over-)estimate by construction.
        let view = example1_view();
        let exact = 3.0 / 16.0;
        for k in 0..=4 {
            let out = sky_a1(&view, k, DetOptions::default()).unwrap();
            assert!(out.estimate >= exact - 1e-12, "k={k}: {}", out.estimate);
        }
    }
}
