//! Hoeffding sample-size arithmetic (Theorem 2).
//!
//! Algorithm 2 estimates `sky(O)` as the mean of `m` i.i.d. 0–1 variables.
//! Hoeffding's inequality gives
//!
//! ```text
//! Pr(|Y/m − sky(O)| ≥ ε) ≤ 2·exp(−2mε²)
//! ```
//!
//! so `m = (1/2ε²)·ln(2/δ)` samples suffice for an ε-approximation with
//! confidence `1 − δ` — the paper's `ε = δ = 0.01` works out to 26 492
//! samples, although Section 6.2 observes that 3 000 already meets the
//! error bound in practice.

use crate::error::{ApproxError, Result};

fn check_unit_open(name: &'static str, v: f64) -> Result<()> {
    if v.is_nan() || v <= 0.0 || v >= 1.0 {
        return Err(ApproxError::InvalidParameter { name, value: v });
    }
    Ok(())
}

/// The Hoeffding sample size `⌈(1/2ε²)·ln(2/δ)⌉` of Theorem 2.
pub fn hoeffding_samples(epsilon: f64, delta: f64) -> Result<u64> {
    check_unit_open("epsilon", epsilon)?;
    check_unit_open("delta", delta)?;
    Ok(((2.0f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64)
}

/// The error bound `ε = sqrt(ln(2/δ) / 2m)` achieved by `m` samples at
/// confidence `1 − δ`.
pub fn hoeffding_epsilon(samples: u64, delta: f64) -> Result<f64> {
    check_unit_open("delta", delta)?;
    if samples == 0 {
        return Err(ApproxError::ZeroSamples);
    }
    Ok(((2.0f64 / delta).ln() / (2.0 * samples as f64)).sqrt())
}

/// The failure probability `δ = 2·exp(−2mε²)` of `m` samples at error `ε`
/// (may exceed 1 for hopeless budgets — it is only an upper bound).
pub fn hoeffding_delta(samples: u64, epsilon: f64) -> Result<f64> {
    check_unit_open("epsilon", epsilon)?;
    if samples == 0 {
        return Err(ApproxError::ZeroSamples);
    }
    Ok(2.0 * (-2.0 * samples as f64 * epsilon * epsilon).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size() {
        // "theoretically the sample size for both algorithms should be
        // 26492 (1/(2ε²) · ln(2/δ))" at ε = δ = 0.01.
        assert_eq!(hoeffding_samples(0.01, 0.01).unwrap(), 26_492);
    }

    #[test]
    fn round_trips_are_consistent() {
        let eps = 0.02;
        let delta = 0.05;
        let m = hoeffding_samples(eps, delta).unwrap();
        let eps_back = hoeffding_epsilon(m, delta).unwrap();
        assert!(eps_back <= eps + 1e-12, "ceil only tightens the bound");
        let delta_back = hoeffding_delta(m, eps).unwrap();
        assert!(delta_back <= delta + 1e-12);
    }

    #[test]
    fn monotonicity() {
        assert!(hoeffding_samples(0.01, 0.01).unwrap() > hoeffding_samples(0.05, 0.01).unwrap());
        assert!(hoeffding_samples(0.01, 0.01).unwrap() > hoeffding_samples(0.01, 0.10).unwrap());
        assert!(hoeffding_epsilon(10_000, 0.01).unwrap() < hoeffding_epsilon(1_000, 0.01).unwrap());
    }

    #[test]
    fn parameter_validation() {
        assert!(hoeffding_samples(0.0, 0.5).is_err());
        assert!(hoeffding_samples(1.0, 0.5).is_err());
        assert!(hoeffding_samples(0.5, f64::NAN).is_err());
        assert!(hoeffding_epsilon(0, 0.5).is_err());
        assert!(hoeffding_delta(100, 1.5).is_err());
    }
}
