//! Errors of the approximate algorithms.

use std::fmt;
use std::time::Duration;

use presky_core::error::CoreError;
use presky_exact::error::ExactError;

/// Failure modes of the approximation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxError {
    /// An `(ε, δ)` parameter outside the open interval `(0, 1)`.
    InvalidParameter {
        /// Parameter name (`"epsilon"` / `"delta"`).
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A zero sample budget was requested.
    ZeroSamples,
    /// The absolute wall-clock deadline passed mid-run.
    DeadlineExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// Worlds fully evaluated before giving up.
        samples_drawn: u64,
    },
    /// An error from the data-model layer.
    Core(CoreError),
    /// An error from the exact engines (A1/A2 delegate to them).
    Exact(ExactError),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::InvalidParameter { name, value } => {
                write!(f, "{name} = {value} must lie strictly between 0 and 1")
            }
            ApproxError::ZeroSamples => write!(f, "sample budget must be positive"),
            ApproxError::DeadlineExceeded { elapsed, samples_drawn } => {
                write!(f, "deadline exceeded after {elapsed:?} ({samples_drawn} worlds sampled)")
            }
            ApproxError::Core(e) => write!(f, "{e}"),
            ApproxError::Exact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApproxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApproxError::Core(e) => Some(e),
            ApproxError::Exact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ApproxError {
    fn from(e: CoreError) -> Self {
        ApproxError::Core(e)
    }
}

impl From<ExactError> for ApproxError {
    fn from(e: ExactError) -> Self {
        ApproxError::Exact(e)
    }
}

/// Result alias for this crate.
pub type Result<T, E = ApproxError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ApproxError = CoreError::EmptySchema.into();
        assert!(matches!(e, ApproxError::Core(_)));
        let e: ApproxError = ExactError::MaskWidthExceeded { n: 70 }.into();
        assert!(e.to_string().contains("70"));
        let e = ApproxError::InvalidParameter { name: "epsilon", value: 2.0 };
        assert!(e.to_string().contains("epsilon"));
    }
}
