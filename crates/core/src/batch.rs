//! Batch assembly of per-target [`CoinView`]s.
//!
//! [`CoinView::build`] is the right API for one `sky(O)` query, but the
//! all-objects driver calls it n times, and each call re-hashes every
//! `(dim, value)` pair through a fresh interner and re-runs the O(n·d)
//! duplicate scan — an O(n²·d) preprocessing bill for the whole batch.
//!
//! [`BatchCoinContext`] hoists everything target-independent out of that
//! loop in **one pass** over the [`Table`]:
//!
//! - per-dimension *dense value codes* (`value → 0..v_j` in first-appearance
//!   order), so per-target coin interning becomes array indexing against an
//!   epoch-stamped table instead of hashing;
//! - per-`(dim, code)` posting lists (which rows carry the code) and the
//!   first two occurrence rows of every code, feeding the sparse assembly
//!   path below;
//! - the duplicate-row check, run once instead of once per target;
//! - a dense memo of `pr_strict(j, ·, target_j)` for every code of a
//!   dimension, refreshed only when consecutive targets change their value
//!   on that dimension (the common case for block workloads and chunked
//!   dispatch is no refresh at all).
//!
//! [`BatchCoinContext::view_into`] then assembles the view of any target
//! into a caller-owned [`CoinView`] without allocating after warm-up, by
//! one of two strategies chosen per target:
//!
//! - **dense**: the straightforward row-major scan, producing a view
//!   *literally identical* to `CoinView::build` (same coins, ids, order);
//! - **sparse**: when the per-dimension zero/nonzero classification proves
//!   that only few rows can survive [`CoinView::prune_impossible`]
//!   (every other row carries a zero-probability coin), the surviving
//!   attackers are enumerated straight from the posting lists of the most
//!   selective dimension — O(survivors · d) instead of O(n · d) — and the
//!   view is built *already pruned*.
//!
//! The sparse view is not byte-equal to `CoinView::build` (pruned rows and
//! their never-referenced coins are absent, so coin ids shift), but it is
//! **order-isomorphic**: surviving attackers appear in the same order, and
//! their coins are relabelled by first-occurrence rank — exactly the
//! relative order `CoinView::build` would have assigned. Every downstream
//! consumer (absorption, coin-compacting restriction, partition, the exact
//! engine and the sampler) is invariant under that relabelling, so query
//! results stay **bit-identical** to the per-target path (see
//! `crates/query/tests/properties.rs`).

use crate::coins::{Attacker, CoinKey, CoinView};
use crate::error::{check_probability, CoreError, Result};
use crate::preference::PreferenceModel;
use crate::table::Table;
use crate::types::{DimId, ObjectId, ValueId};

/// A sparse assembly is attempted when the candidate rows of the most
/// selective dimension number at most `n / SPARSE_FRACTION`.
const SPARSE_FRACTION: usize = 4;

/// Target-independent indexes for assembling many [`CoinView`]s over one
/// table. Build once per batch query with [`BatchCoinContext::build`], or
/// derive the next dataset epoch's context from the previous one with
/// [`BatchCoinContext::with_row_appended`] /
/// [`BatchCoinContext::with_row_removed`] without re-hashing the table.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCoinContext {
    d: usize,
    n: usize,
    /// Dense value code of each cell, dimension-major: `dense[j * n + row]`.
    dense: Vec<u32>,
    /// Flattened per-dimension code → original value tables.
    code_values: Vec<ValueId>,
    /// `code_values`/stamp-table offsets per dimension (`d + 1` entries).
    offsets: Vec<u32>,
    /// First and second row carrying each `(dim, code)` slot (`u32::MAX`
    /// when absent). Excluding one target row, the slot's earliest
    /// occurrence — the rank `CoinView::build` orders coins by — is O(1).
    first_row: Vec<u32>,
    second_row: Vec<u32>,
    /// CSR posting lists: rows carrying each slot, ascending.
    post_off: Vec<u32>,
    post_rows: Vec<u32>,
    /// Identity tag so a [`BatchScratch`] can detect being moved across
    /// contexts and reset itself instead of serving stale memo entries.
    fingerprint: u64,
}

impl BatchCoinContext {
    /// One pass over `table`: dense-code every column, record posting
    /// lists and first occurrences, and validate the no-duplicates
    /// assumption (once, instead of once per target).
    pub fn build(table: &Table) -> Result<Self> {
        if let Some((first, second)) = table.find_duplicate() {
            return Err(CoreError::DuplicateObject { first, second });
        }
        let d = table.dimensionality();
        let n = table.len();
        let mut dense = Vec::with_capacity(d * n);
        let mut code_values = Vec::new();
        let mut offsets = Vec::with_capacity(d + 1);
        offsets.push(0u32);
        let mut codes: std::collections::HashMap<ValueId, u32> = std::collections::HashMap::new();
        for j in (0..d).map(DimId::from) {
            codes.clear();
            let base = code_values.len() as u32;
            for &v in table.column(j) {
                let next = (code_values.len() as u32) - base;
                let code = *codes.entry(v).or_insert(next);
                if code == next {
                    code_values.push(v);
                }
                dense.push(code);
            }
            offsets.push(code_values.len() as u32);
        }
        let total = code_values.len();
        let mut first_row = vec![u32::MAX; total];
        let mut second_row = vec![u32::MAX; total];
        let mut post_off = vec![0u32; total + 1];
        for j in 0..d {
            for row in 0..n {
                let flat = (offsets[j] + dense[j * n + row]) as usize;
                post_off[flat + 1] += 1;
                if first_row[flat] == u32::MAX {
                    first_row[flat] = row as u32;
                } else if second_row[flat] == u32::MAX {
                    second_row[flat] = row as u32;
                }
            }
        }
        for i in 0..total {
            post_off[i + 1] += post_off[i];
        }
        let mut cursor: Vec<u32> = post_off[..total].to_vec();
        let mut post_rows = vec![0u32; d * n];
        for j in 0..d {
            for row in 0..n {
                let flat = (offsets[j] + dense[j * n + row]) as usize;
                post_rows[cursor[flat] as usize] = row as u32;
                cursor[flat] += 1;
            }
        }
        let fingerprint = fingerprint(d, n, &dense);
        Ok(Self {
            d,
            n,
            dense,
            code_values,
            offsets,
            first_row,
            second_row,
            post_off,
            post_rows,
            fingerprint,
        })
    }

    /// Derive the context of `table`, which must be `self`'s table plus one
    /// appended row, without re-coding the untouched cells.
    ///
    /// Existing codes, occurrence indexes, and posting segments are copied
    /// (row `n` sorts after every existing posting entry, so each segment
    /// is a copy + optional push); only the appended row's values are
    /// looked up. The result is **identical** to `build(table)` — appending
    /// preserves first-appearance code order — so views, fingerprints, and
    /// scratch-reset behaviour are exactly the fresh build's.
    ///
    /// The duplicate check intersects posting lists instead of re-hashing
    /// all rows: if any dimension's value is new to that dimension the row
    /// cannot be a duplicate; otherwise only the rows sharing the new
    /// row's code on its most selective dimension are compared.
    pub fn with_row_appended(&self, table: &Table) -> Result<Self> {
        let (d, n) = (self.d, self.n);
        debug_assert_eq!(table.dimensionality(), d);
        debug_assert_eq!(table.len(), n + 1);
        let new_row = n;
        let mut new_code = vec![0u32; d];
        let mut is_new_value = vec![false; d];
        for j in 0..d {
            let v = table.column(DimId::from(j))[new_row];
            let lo = self.offsets[j] as usize;
            let hi = self.offsets[j + 1] as usize;
            match self.code_values[lo..hi].iter().position(|&w| w == v) {
                Some(c) => new_code[j] = c as u32,
                None => {
                    new_code[j] = (hi - lo) as u32;
                    is_new_value[j] = true;
                }
            }
        }
        if d == 0 || !is_new_value.contains(&true) {
            self.check_append_duplicate(&new_code, new_row)?;
        }
        let mut code_values = Vec::with_capacity(self.code_values.len() + d);
        let mut offsets = Vec::with_capacity(d + 1);
        offsets.push(0u32);
        for (j, &is_new) in is_new_value.iter().enumerate() {
            let lo = self.offsets[j] as usize;
            let hi = self.offsets[j + 1] as usize;
            code_values.extend_from_slice(&self.code_values[lo..hi]);
            if is_new {
                code_values.push(table.column(DimId::from(j))[new_row]);
            }
            offsets.push(code_values.len() as u32);
        }
        let nn = n + 1;
        let mut dense = Vec::with_capacity(d * nn);
        for (j, &code) in new_code.iter().enumerate() {
            dense.extend_from_slice(&self.dense[j * n..(j + 1) * n]);
            dense.push(code);
        }
        let total = code_values.len();
        let mut first_row = Vec::with_capacity(total);
        let mut second_row = Vec::with_capacity(total);
        let mut post_off = Vec::with_capacity(total + 1);
        post_off.push(0u32);
        let mut post_rows = Vec::with_capacity(d * nn);
        for j in 0..d {
            let lo = self.offsets[j] as usize;
            let hi = self.offsets[j + 1] as usize;
            for flat in lo..hi {
                let (s, e) = (self.post_off[flat] as usize, self.post_off[flat + 1] as usize);
                post_rows.extend_from_slice(&self.post_rows[s..e]);
                let mut first = self.first_row[flat];
                let mut second = self.second_row[flat];
                // A fresh code never enters this loop (its code equals
                // hi - lo, past the last old flat), so this branch only
                // extends an existing slot.
                if (flat - lo) as u32 == new_code[j] {
                    post_rows.push(new_row as u32);
                    if first == u32::MAX {
                        first = new_row as u32;
                    } else if second == u32::MAX {
                        second = new_row as u32;
                    }
                }
                post_off.push(post_rows.len() as u32);
                first_row.push(first);
                second_row.push(second);
            }
            if is_new_value[j] {
                post_rows.push(new_row as u32);
                post_off.push(post_rows.len() as u32);
                first_row.push(new_row as u32);
                second_row.push(u32::MAX);
            }
        }
        let fingerprint = fingerprint(d, nn, &dense);
        Ok(Self {
            d,
            n: nn,
            dense,
            code_values,
            offsets,
            first_row,
            second_row,
            post_off,
            post_rows,
            fingerprint,
        })
    }

    /// Duplicate check for an appended row whose every value already has a
    /// code: scan the posting list of the row's code on its most selective
    /// dimension and compare candidates across the remaining dimensions.
    fn check_append_duplicate(&self, new_code: &[u32], new_row: usize) -> Result<()> {
        let (d, n) = (self.d, self.n);
        if d == 0 {
            // Zero dimensions: every row is the empty row.
            if n >= 1 {
                return Err(CoreError::DuplicateObject {
                    first: ObjectId(0),
                    second: ObjectId(new_row as u32),
                });
            }
            return Ok(());
        }
        let posting_len = |j: usize| {
            let flat = (self.offsets[j] + new_code[j]) as usize;
            (self.post_off[flat + 1] - self.post_off[flat]) as usize
        };
        let jmin = (0..d).min_by_key(|&j| posting_len(j)).expect("d > 0");
        let flat = (self.offsets[jmin] + new_code[jmin]) as usize;
        let (s, e) = (self.post_off[flat] as usize, self.post_off[flat + 1] as usize);
        'cand: for &r in &self.post_rows[s..e] {
            for (j, &code) in new_code.iter().enumerate() {
                if self.dense[j * n + r as usize] != code {
                    continue 'cand;
                }
            }
            return Err(CoreError::DuplicateObject {
                first: ObjectId(r),
                second: ObjectId(new_row as u32),
            });
        }
        Ok(())
    }

    /// Derive the context of `table`, which must be `self`'s table with row
    /// `removed` deleted (later rows shifted down by one).
    ///
    /// Codes whose last occurrence was the removed row are **retained** as
    /// orphans: their postings become empty and their candidate counts
    /// zero, so they can never surface in a view — but the per-dimension
    /// code *numbering* may then differ from a fresh `build` of the
    /// mutated table (which re-ranks by first appearance). View assembly
    /// orders coins by occurrence row, not code number, so every assembled
    /// view — and therefore every query answer — is still bit-identical to
    /// the fresh build's. Only [`BatchCoinContext::fingerprint`], an
    /// *identity* tag for scratch invalidation, is allowed to differ.
    pub fn with_row_removed(&self, table: &Table, removed: ObjectId) -> Result<Self> {
        let (d, n) = (self.d, self.n);
        let r = removed.index();
        if r >= n {
            return Err(CoreError::TargetOutOfRange { target: removed, rows: n });
        }
        debug_assert_eq!(table.dimensionality(), d);
        debug_assert_eq!(table.len(), n - 1);
        let nn = n - 1;
        let mut dense = Vec::with_capacity(d * nn);
        for j in 0..d {
            let stripe = &self.dense[j * n..(j + 1) * n];
            dense.extend_from_slice(&stripe[..r]);
            dense.extend_from_slice(&stripe[r + 1..]);
        }
        // Postings drop the removed row and renumber later rows; the first
        // two occurrences are re-read straight off the spliced segments
        // (they stay ascending).
        let total = self.code_values.len();
        let mut first_row = Vec::with_capacity(total);
        let mut second_row = Vec::with_capacity(total);
        let mut post_off = Vec::with_capacity(total + 1);
        post_off.push(0u32);
        let mut post_rows = Vec::with_capacity(d * nn);
        for flat in 0..total {
            let (s, e) = (self.post_off[flat] as usize, self.post_off[flat + 1] as usize);
            let start = post_rows.len();
            for &row in &self.post_rows[s..e] {
                match (row as usize).cmp(&r) {
                    std::cmp::Ordering::Less => post_rows.push(row),
                    std::cmp::Ordering::Equal => {}
                    std::cmp::Ordering::Greater => post_rows.push(row - 1),
                }
            }
            post_off.push(post_rows.len() as u32);
            first_row.push(post_rows.get(start).copied().unwrap_or(u32::MAX));
            second_row.push(post_rows.get(start + 1).copied().unwrap_or(u32::MAX));
        }
        let fingerprint = fingerprint(d, nn, &dense);
        Ok(Self {
            d,
            n: nn,
            dense,
            code_values: self.code_values.clone(),
            offsets: self.offsets.clone(),
            first_row,
            second_row,
            post_off,
            post_rows,
            fingerprint,
        })
    }

    /// Posting length of `(dim, value)` — how many rows carry `value` on
    /// `dim` — or `None` if the value never occurs there. This is the
    /// candidate count the write path uses to bound which targets an
    /// edited preference pair can dirty.
    pub fn value_count(&self, dim: DimId, value: ValueId) -> Option<usize> {
        let j = dim.index();
        let lo = self.offsets[j] as usize;
        let hi = self.offsets[j + 1] as usize;
        let c = self.code_values[lo..hi].iter().position(|&w| w == value)?;
        let flat = lo + c;
        Some((self.post_off[flat + 1] - self.post_off[flat]) as usize)
    }

    /// The targets row `attacker` can possibly attack under `prefs`: every
    /// row `t ≠ attacker` such that on each dimension where their values
    /// differ, `pr_strict(attacker_j, t_j) > 0`. These are exactly the
    /// targets whose coin view gains (insert) or loses (remove) an
    /// attacker when `attacker` enters or leaves the dataset — the write
    /// path's dirty set.
    ///
    /// Enumerated from the posting lists of the attacker's most selective
    /// dimension (candidates = rows sharing its value there, plus rows
    /// whose value it beats with positive probability), then verified
    /// across the remaining dimensions — O(candidates · d), not O(n · d),
    /// on selective datasets.
    pub fn attackable_targets<M: PreferenceModel>(
        &self,
        prefs: &M,
        attacker: ObjectId,
    ) -> Result<Vec<ObjectId>> {
        let (d, n) = (self.d, self.n);
        let a = attacker.index();
        if a >= n {
            return Err(CoreError::TargetOutOfRange { target: attacker, rows: n });
        }
        if d == 0 || n <= 1 {
            return Ok(Vec::new());
        }
        // Per dimension: which codes the attacker's value beats with
        // positive probability (the target-side classification — note the
        // argument order is pr_strict(attacker value, target value)).
        let total = self.code_values.len();
        let mut positive = vec![false; total];
        let mut acode = vec![0u32; d];
        let mut cand_count = vec![0usize; d];
        for j in 0..d {
            let lo = self.offsets[j] as usize;
            let hi = self.offsets[j + 1] as usize;
            let ac = self.dense[j * n + a];
            acode[j] = ac;
            let av = self.code_values[lo + ac as usize];
            // Rows sharing the attacker's value contribute no coin on this
            // dimension; minus one for the attacker itself.
            let tslot = lo + ac as usize;
            let mut cand = (self.post_off[tslot + 1] - self.post_off[tslot]) as usize - 1;
            for (off, slot) in positive[lo..hi].iter_mut().enumerate() {
                let flat = lo + off;
                if flat == tslot {
                    continue;
                }
                let p = prefs.pr_strict(DimId::from(j), av, self.code_values[flat]);
                if p > 0.0 {
                    *slot = true;
                    cand += (self.post_off[flat + 1] - self.post_off[flat]) as usize;
                }
            }
            cand_count[j] = cand;
        }
        let jmin = (0..d).min_by_key(|&j| cand_count[j]).expect("d > 0");
        let lo = self.offsets[jmin] as usize;
        let hi = self.offsets[jmin + 1] as usize;
        let mut out = Vec::new();
        'rows: for flat in lo..hi {
            let on_value = (flat - lo) as u32 == acode[jmin];
            if !on_value && !positive[flat] {
                continue;
            }
            let (s, e) = (self.post_off[flat] as usize, self.post_off[flat + 1] as usize);
            't: for &t in &self.post_rows[s..e] {
                let t = t as usize;
                if t == a {
                    continue;
                }
                for j in 0..d {
                    let tcode = self.dense[j * n + t];
                    if tcode != acode[j] && !positive[(self.offsets[j] + tcode) as usize] {
                        continue 't;
                    }
                }
                out.push(ObjectId(t as u32));
                if out.len() == n - 1 {
                    break 'rows;
                }
            }
        }
        out.sort_unstable_by_key(|o| o.index());
        Ok(out)
    }

    /// Number of objects in the underlying table.
    pub fn n_objects(&self) -> usize {
        self.n
    }

    /// Dimensionality of the underlying table.
    pub fn dimensionality(&self) -> usize {
        self.d
    }

    /// The distinct values of dimension `j`, in dense-code order (code `c`
    /// maps to the `c`-th entry). This is the value universe a preference
    /// model is consulted over, which is exactly what a dataset+preference
    /// fingerprint must cover.
    pub fn dim_values(&self, j: usize) -> &[ValueId] {
        &self.code_values[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    /// The raw value of `target` on dimension `dim` — the `b` of every
    /// coin probability `Pr(a ≺ b)` in `target`'s view on that dimension.
    /// The sensitivity drivers use this to map a coin's
    /// `(dim, foreign value)` key back to the full preference direction.
    ///
    /// # Panics
    ///
    /// Panics when `target` or `dim` is out of range.
    pub fn target_value(&self, target: ObjectId, dim: DimId) -> ValueId {
        let (j, t) = (dim.0 as usize, target.index());
        assert!(j < self.d && t < self.n, "target/dim out of range");
        self.code_values[(self.offsets[j] + self.dense[j * self.n + t]) as usize]
    }

    /// Identity hash of the dense-coded table (dimensions, row count, and
    /// every cell's code). Two contexts with equal fingerprints assemble
    /// identical views for every target.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Assemble the coin view of `sky(target)` into `out`, reusing `out`'s
    /// buffers and `scratch`'s stamp tables.
    ///
    /// The result is equivalent to `CoinView::build(table, prefs, target)`
    /// up to pruning of impossible attackers and an order-preserving coin
    /// relabelling (see the module docs); every query answer derived from
    /// it is bit-identical to the per-target path.
    pub fn view_into<M: PreferenceModel>(
        &self,
        prefs: &M,
        target: ObjectId,
        scratch: &mut BatchScratch,
        out: &mut CoinView,
    ) -> Result<()> {
        let (d, n) = (self.d, self.n);
        let t = target.index();
        if t >= n {
            return Err(CoreError::TargetOutOfRange { target, rows: n });
        }
        scratch.ensure(self);
        // Refresh the pr_strict memo and the zero/nonzero code index of
        // every dimension whose target value changed. Entries stay valid
        // exactly while the target's value on that dimension does.
        for j in 0..d {
            let tcode = self.dense[j * n + t];
            if scratch.dim_tcode[j] == tcode {
                continue;
            }
            scratch.dim_tcode[j] = tcode;
            let lo = self.offsets[j] as usize;
            let hi = self.offsets[j + 1] as usize;
            let ov = self.code_values[lo + tcode as usize];
            let nz = &mut scratch.dim_nz[j];
            nz.clear();
            let tslot = lo + tcode as usize;
            let mut cand = (self.post_off[tslot + 1] - self.post_off[tslot]) as usize;
            for flat in lo..hi {
                let code = (flat - lo) as u32;
                if code == tcode {
                    continue;
                }
                let p = prefs.pr_strict(DimId::from(j), self.code_values[flat], ov);
                check_probability(p, "coin probability").map_err(|_| {
                    CoreError::InvalidProbability { value: p, context: "preference model output" }
                })?;
                scratch.memo_prob[flat] = p;
                if p > 0.0 {
                    nz.push(code);
                    cand += (self.post_off[flat + 1] - self.post_off[flat]) as usize;
                }
            }
            scratch.dim_cand[j] = cand;
        }
        let epoch = scratch.next_epoch();
        match (0..d).min_by_key(|&j| scratch.dim_cand[j]) {
            Some(jmin) if scratch.dim_cand[jmin].saturating_mul(SPARSE_FRACTION) <= n => {
                self.sparse_view(t, jmin, epoch, scratch, out);
            }
            Some(_) => self.dense_view(t, epoch, scratch, out),
            // Zero dimensions: with the duplicate check passed, the table
            // has at most one row, so the view is empty.
            None => {
                out.coin_prob.clear();
                out.coin_key.clear();
                out.attackers.clear();
            }
        }
        Ok(())
    }

    /// Row-major full scan; bit-for-bit the view `CoinView::build` returns.
    fn dense_view(&self, t: usize, epoch: u32, scratch: &mut BatchScratch, out: &mut CoinView) {
        let (d, n) = (self.d, self.n);
        out.coin_prob.clear();
        out.coin_key.clear();
        let n_att = n - 1;
        out.attackers.truncate(n_att);
        while out.attackers.len() < n_att {
            out.attackers.push(Attacker { coins: Vec::with_capacity(d), source: ObjectId(0) });
        }
        let mut slot = 0usize;
        for row in 0..n {
            if row == t {
                continue;
            }
            let dst = &mut out.attackers[slot];
            dst.coins.clear();
            dst.source = ObjectId(row as u32);
            for j in 0..d {
                let qcode = self.dense[j * n + row];
                if qcode == scratch.dim_tcode[j] {
                    continue;
                }
                let flat = (self.offsets[j] + qcode) as usize;
                if scratch.coin_stamp[flat] != epoch {
                    scratch.coin_stamp[flat] = epoch;
                    scratch.coin_id[flat] = out.coin_prob.len() as u32;
                    out.coin_prob.push(scratch.memo_prob[flat]);
                    out.coin_key
                        .push(Some(CoinKey { dim: DimId::from(j), value: self.code_values[flat] }));
                }
                dst.coins.push(scratch.coin_id[flat]);
            }
            // A coin-free attacker would duplicate the target, which the
            // context build has excluded.
            debug_assert!(!dst.coins.is_empty());
            dst.coins.sort_unstable();
            slot += 1;
        }
    }

    /// Enumerate the rows that survive zero-coin pruning straight from the
    /// posting lists of dimension `jmin` (every survivor's code there is
    /// either the target's or nonzero), then build the already-pruned view
    /// in O(candidates · d). Coins are relabelled by `(first occurrence
    /// row ≠ t, dim)` rank — the order `CoinView::build` discovers them in.
    fn sparse_view(
        &self,
        t: usize,
        jmin: usize,
        epoch: u32,
        scratch: &mut BatchScratch,
        out: &mut CoinView,
    ) {
        let (d, n) = (self.d, self.n);
        let lo = self.offsets[jmin] as usize;
        scratch.cand.clear();
        self.push_postings(lo + scratch.dim_tcode[jmin] as usize, &mut scratch.cand);
        for idx in 0..scratch.dim_nz[jmin].len() {
            let c = scratch.dim_nz[jmin][idx] as usize;
            self.push_postings(lo + c, &mut scratch.cand);
        }
        // Each row appears in exactly one posting per dimension, so the
        // concatenation is duplicate-free; sort restores ascending rows.
        scratch.cand.sort_unstable();

        scratch.survivors.clear();
        scratch.coin_tmp.clear();
        'rows: for idx in 0..scratch.cand.len() {
            let r = scratch.cand[idx] as usize;
            if r == t {
                continue;
            }
            for j in 0..d {
                let qcode = self.dense[j * n + r];
                if qcode == scratch.dim_tcode[j] {
                    continue;
                }
                if scratch.memo_prob[(self.offsets[j] + qcode) as usize] <= 0.0 {
                    continue 'rows;
                }
            }
            scratch.survivors.push(r as u32);
            for j in 0..d {
                let qcode = self.dense[j * n + r];
                if qcode == scratch.dim_tcode[j] {
                    continue;
                }
                let flat = (self.offsets[j] + qcode) as usize;
                if scratch.coin_stamp[flat] != epoch {
                    scratch.coin_stamp[flat] = epoch;
                    // Survivor coins occur in some row ≠ t, so the
                    // second-occurrence fallback is always defined here.
                    let f = if self.first_row[flat] == t as u32 {
                        self.second_row[flat]
                    } else {
                        self.first_row[flat]
                    };
                    scratch.coin_tmp.push((((f as u64) << 32) | j as u64, flat as u32));
                }
            }
        }
        scratch.coin_tmp.sort_unstable();
        out.coin_prob.clear();
        out.coin_key.clear();
        for (id, &(key, flat)) in scratch.coin_tmp.iter().enumerate() {
            let flat = flat as usize;
            scratch.coin_id[flat] = id as u32;
            out.coin_prob.push(scratch.memo_prob[flat]);
            let j = (key & u64::from(u32::MAX)) as usize;
            out.coin_key.push(Some(CoinKey { dim: DimId::from(j), value: self.code_values[flat] }));
        }
        let n_att = scratch.survivors.len();
        out.attackers.truncate(n_att);
        while out.attackers.len() < n_att {
            out.attackers.push(Attacker { coins: Vec::with_capacity(d), source: ObjectId(0) });
        }
        for (slot, &r) in scratch.survivors.iter().enumerate() {
            let dst = &mut out.attackers[slot];
            dst.coins.clear();
            dst.source = ObjectId(r);
            for j in 0..d {
                let qcode = self.dense[j * n + r as usize];
                if qcode == scratch.dim_tcode[j] {
                    continue;
                }
                dst.coins.push(scratch.coin_id[(self.offsets[j] + qcode) as usize]);
            }
            // The relabelling is monotone in discovery order, so sorting
            // by new ids equals sorting by the ids `CoinView::build` uses.
            dst.coins.sort_unstable();
        }
    }

    fn push_postings(&self, flat: usize, cand: &mut Vec<u32>) {
        let (s, e) = (self.post_off[flat] as usize, self.post_off[flat + 1] as usize);
        cand.extend_from_slice(&self.post_rows[s..e]);
    }
}

fn fingerprint(d: usize, n: usize, dense: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |w: u64| {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(d as u64);
    eat(n as u64);
    for &c in dense {
        eat(c as u64);
    }
    h
}

/// Reusable stamp tables for [`BatchCoinContext::view_into`]. One per
/// worker thread; cheap to create, free to reuse.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Which epoch last interned each (dim, code) slot.
    coin_stamp: Vec<u32>,
    /// Coin id assigned to each (dim, code) slot in the current epoch.
    coin_id: Vec<u32>,
    epoch: u32,
    /// pr_strict memo per (dim, code) slot, valid while the target keeps
    /// its value on the slot's dimension (tracked by `dim_tcode`).
    memo_prob: Vec<f64>,
    /// Target code each dimension's memo was refreshed for.
    dim_tcode: Vec<u32>,
    /// Codes with nonzero memoised probability, per dimension.
    dim_nz: Vec<Vec<u32>>,
    /// Candidate-row count of each dimension: total posting length of its
    /// nonzero codes plus the target-code posting.
    dim_cand: Vec<usize>,
    /// Candidate row / survivor row buffers for the sparse path.
    cand: Vec<u32>,
    survivors: Vec<u32>,
    /// Distinct survivor coins as (discovery-rank key, flat slot).
    coin_tmp: Vec<(u64, u32)>,
    fingerprint: u64,
}

impl BatchScratch {
    fn ensure(&mut self, ctx: &BatchCoinContext) {
        let total = *ctx.offsets.last().unwrap_or(&0) as usize;
        if self.fingerprint == ctx.fingerprint && self.coin_stamp.len() == total {
            return;
        }
        self.coin_stamp.clear();
        self.coin_stamp.resize(total, 0);
        self.coin_id.clear();
        self.coin_id.resize(total, 0);
        self.epoch = 0;
        self.memo_prob.clear();
        self.memo_prob.resize(total, 0.0);
        self.dim_tcode.clear();
        self.dim_tcode.resize(ctx.d, u32::MAX);
        self.dim_nz.iter_mut().for_each(Vec::clear);
        self.dim_nz.resize(ctx.d, Vec::new());
        self.dim_cand.clear();
        self.dim_cand.resize(ctx.d, 0);
        self.cand.clear();
        self.survivors.clear();
        self.coin_tmp.clear();
        self.fingerprint = ctx.fingerprint;
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.coin_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coins::CoinRemap;
    use crate::preference::{DeterministicOrder, PrefPair, SeededPreferences, TablePreferences};

    fn example1() -> (Table, TablePreferences) {
        let t =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        (t, TablePreferences::with_default(PrefPair::half()))
    }

    /// Deterministic distinct-row table exercising shared values across
    /// rows and dimensions.
    fn wide_table(n: usize, d: usize) -> Table {
        let mut s = 0x9e37u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut rows = std::collections::BTreeSet::new();
        while rows.len() < n {
            rows.insert(next() % 7usize.pow(d as u32) as u64);
        }
        let decoded: Vec<Vec<u32>> = rows
            .iter()
            .map(|&i| {
                let mut x = i;
                (0..d)
                    .map(|_| {
                        let v = (x % 7) as u32;
                        x /= 7;
                        v
                    })
                    .collect()
            })
            .collect();
        Table::from_rows_raw(d, &decoded).unwrap()
    }

    /// Prune + coin-compact a view into the canonical form every solver
    /// consumes; batch views must agree with `CoinView::build` here even
    /// when the sparse path pre-pruned them.
    fn canonical(view: &CoinView) -> CoinView {
        let mut pruned = view.clone();
        pruned.prune_impossible();
        let ids: Vec<usize> = (0..pruned.n_attackers()).collect();
        let mut remap = CoinRemap::default();
        let mut out = CoinView::empty();
        pruned.restrict_into(&ids, &mut remap, &mut out);
        out
    }

    #[test]
    fn batch_views_match_single_shot_builds_bit_for_bit() {
        // All-positive preferences keep every row a candidate, so the
        // dense path runs and the views must be literally identical.
        let (t, p) = example1();
        let ctx = BatchCoinContext::build(&t).unwrap();
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        for target in t.objects() {
            let fresh = CoinView::build(&t, &p, target).unwrap();
            ctx.view_into(&p, target, &mut scratch, &mut out).unwrap();
            assert_eq!(fresh, out, "target {target}");
        }
    }

    #[test]
    fn batch_views_match_on_wider_seeded_instances() {
        let t = wide_table(60, 3);
        let p = SeededPreferences::complementary(42);
        let ctx = BatchCoinContext::build(&t).unwrap();
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        // Twice over all targets: the second sweep runs entirely on warm
        // memo entries and must still match.
        for _ in 0..2 {
            for target in t.objects() {
                let fresh = CoinView::build(&t, &p, target).unwrap();
                ctx.view_into(&p, target, &mut scratch, &mut out).unwrap();
                assert_eq!(fresh, out, "target {target}");
            }
        }
    }

    #[test]
    fn sparse_views_are_canonically_equal_to_single_shot_builds() {
        // Deterministic order yields many zero coins, so most targets take
        // the sparse path; the canonical (pruned, compacted) forms must
        // agree bit-for-bit, including attacker sources and coin keys.
        let t = wide_table(60, 3);
        let p = DeterministicOrder::ascending();
        let ctx = BatchCoinContext::build(&t).unwrap();
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        for _ in 0..2 {
            for target in t.objects() {
                let fresh = CoinView::build(&t, &p, target).unwrap();
                ctx.view_into(&p, target, &mut scratch, &mut out).unwrap();
                assert_eq!(
                    fresh.has_certain_attacker(),
                    out.has_certain_attacker(),
                    "target {target}"
                );
                assert_eq!(canonical(&fresh), canonical(&out), "target {target}");
            }
        }
    }

    #[test]
    fn scratch_moved_across_contexts_resets_itself() {
        let ta = wide_table(20, 2);
        let tb = wide_table(33, 3);
        let p = SeededPreferences::complementary(7);
        let ca = BatchCoinContext::build(&ta).unwrap();
        let cb = BatchCoinContext::build(&tb).unwrap();
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        ca.view_into(&p, ObjectId(3), &mut scratch, &mut out).unwrap();
        cb.view_into(&p, ObjectId(5), &mut scratch, &mut out).unwrap();
        assert_eq!(CoinView::build(&tb, &p, ObjectId(5)).unwrap(), out);
        ca.view_into(&p, ObjectId(3), &mut scratch, &mut out).unwrap();
        assert_eq!(CoinView::build(&ta, &p, ObjectId(3)).unwrap(), out);
    }

    /// Assert `ctx` assembles, for every target of `t`, views giving the
    /// same canonical form as a fresh `CoinView::build` — the invariant
    /// every query answer depends on.
    fn assert_views_match<M: PreferenceModel>(ctx: &BatchCoinContext, t: &Table, p: &M) {
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        for target in t.objects() {
            let fresh = CoinView::build(t, p, target).unwrap();
            ctx.view_into(p, target, &mut scratch, &mut out).unwrap();
            assert_eq!(fresh.has_certain_attacker(), out.has_certain_attacker(), "{target}");
            assert_eq!(canonical(&fresh), canonical(&out), "target {target}");
        }
    }

    #[test]
    fn incremental_append_equals_fresh_build() {
        let t = wide_table(40, 3);
        let mut ctx = BatchCoinContext::build(&t).unwrap();
        let mut cur = t;
        // Append rows mixing old values (0..7 universe) and brand-new ones.
        for (i, row) in
            [vec![0, 1, 2], vec![9, 9, 9], vec![3, 9, 0], vec![10, 0, 11]].iter().enumerate()
        {
            cur = cur
                .with_row_appended(&row.iter().map(|&v| ValueId(v)).collect::<Vec<_>>())
                .unwrap();
            ctx = ctx.with_row_appended(&cur).unwrap();
            let fresh = BatchCoinContext::build(&cur).unwrap();
            // Appending preserves first-appearance order, so the whole
            // structure — codes, postings, fingerprint — is identical.
            assert_eq!(ctx, fresh, "append step {i}");
        }
        assert_views_match(&ctx, &cur, &SeededPreferences::complementary(11));
    }

    #[test]
    fn incremental_append_detects_duplicates_via_postings() {
        let (t, _) = example1();
        let ctx = BatchCoinContext::build(&t).unwrap();
        // Row [1, 0] duplicates row 2.
        let grown = t.with_row_appended(&[ValueId(1), ValueId(0)]).unwrap();
        let err = ctx.with_row_appended(&grown).unwrap_err();
        assert_eq!(err, CoreError::DuplicateObject { first: ObjectId(2), second: ObjectId(5) });
        // A row with one brand-new value short-circuits the check.
        let grown = t.with_row_appended(&[ValueId(7), ValueId(0)]).unwrap();
        assert!(ctx.with_row_appended(&grown).is_ok());
    }

    #[test]
    fn incremental_remove_views_equal_fresh_build() {
        let t = wide_table(40, 3);
        let p = SeededPreferences::complementary(5);
        let mut ctx = BatchCoinContext::build(&t).unwrap();
        let mut cur = t;
        // Remove first, middle, and last rows; removing row 0 retires a
        // value's first occurrence, exercising the orphan-code path where
        // the incremental numbering diverges from a fresh build's.
        for r in [0usize, 17, 36] {
            cur = cur.with_row_removed(ObjectId(r as u32)).unwrap();
            ctx = ctx.with_row_removed(&cur, ObjectId(r as u32)).unwrap();
            assert_eq!(ctx.n_objects(), cur.len());
            assert_views_match(&ctx, &cur, &p);
        }
        assert_views_match(&ctx, &cur, &DeterministicOrder::ascending());
    }

    #[test]
    fn mixed_append_remove_chain_stays_consistent() {
        let t = wide_table(30, 2);
        let p = SeededPreferences::complementary(3);
        let mut ctx = BatchCoinContext::build(&t).unwrap();
        let mut cur = t;
        for step in 0..12 {
            if step % 3 == 2 {
                let r = ObjectId((step * 2 % cur.len()) as u32);
                cur = cur.with_row_removed(r).unwrap();
                ctx = ctx.with_row_removed(&cur, r).unwrap();
            } else {
                let row = vec![ValueId((step % 9) as u32), ValueId((step * 5 % 11) as u32)];
                let grown = cur.with_row_appended(&row).unwrap();
                match ctx.with_row_appended(&grown) {
                    Ok(next) => {
                        ctx = next;
                        cur = grown;
                    }
                    // Duplicate appends are legitimately refused; the
                    // fresh build must agree.
                    Err(CoreError::DuplicateObject { .. }) => {
                        assert!(matches!(
                            BatchCoinContext::build(&grown),
                            Err(CoreError::DuplicateObject { .. })
                        ));
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            assert_views_match(&ctx, &cur, &p);
        }
    }

    #[test]
    fn attackable_targets_matches_brute_force() {
        let t = wide_table(40, 3);
        for p in [SeededPreferences::complementary(9), SeededPreferences::complementary(21)] {
            let ctx = BatchCoinContext::build(&t).unwrap();
            for a in t.objects() {
                let got = ctx.attackable_targets(&p, a).unwrap();
                let want: Vec<ObjectId> = t
                    .objects()
                    .filter(|&o| {
                        o != a
                            && (0..t.dimensionality()).map(DimId::from).all(|j| {
                                let (av, ov) = (t.value(a, j), t.value(o, j));
                                av == ov || p.pr_strict(j, av, ov) > 0.0
                            })
                    })
                    .collect();
                assert_eq!(got, want, "attacker {a}");
            }
        }
    }

    #[test]
    fn context_rejects_duplicates_and_bad_targets() {
        let t = Table::from_rows_raw(1, &[vec![0], vec![1], vec![0]]).unwrap();
        assert!(matches!(BatchCoinContext::build(&t), Err(CoreError::DuplicateObject { .. })));
        let t2 = Table::from_rows_raw(1, &[vec![0], vec![1]]).unwrap();
        let ctx = BatchCoinContext::build(&t2).unwrap();
        let p = TablePreferences::with_default(PrefPair::half());
        let mut scratch = BatchScratch::default();
        let mut out = CoinView::empty();
        assert!(matches!(
            ctx.view_into(&p, ObjectId(9), &mut scratch, &mut out),
            Err(CoreError::TargetOutOfRange { .. })
        ));
    }
}
