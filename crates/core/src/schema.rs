//! Schemas and per-dimension value dictionaries.
//!
//! A [`Schema`] records the dimensionality of the space and, optionally, a
//! [`Dictionary`] per dimension interning human-readable labels such as
//! `"beach_view"` or `"proper"` (Nursery). Synthetic workloads typically use
//! raw numeric value codes and skip dictionaries entirely.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::types::{DimId, ValueId};

/// A string-interning dictionary for one categorical dimension.
///
/// Labels are assigned dense [`ValueId`]s in insertion order, so the code of
/// a value doubles as an index into [`Dictionary::labels`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dictionary {
    labels: Vec<String>,
    index: HashMap<String, ValueId>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a dictionary pre-populated with `labels`, in order.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut d = Self::new();
        for l in labels {
            d.intern(&l.into());
        }
        d
    }

    /// Intern `label`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, label: &str) -> ValueId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = ValueId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.index.insert(label.to_owned(), id);
        id
    }

    /// Look up the code of `label`, if interned.
    pub fn get(&self, label: &str) -> Option<ValueId> {
        self.index.get(label).copied()
    }

    /// The label of a code, if in range.
    pub fn label(&self, id: ValueId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels in code order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Description of one dimension of the space.
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    /// Human-readable attribute name (e.g. `"health"`).
    pub name: String,
    /// Label dictionary; `None` for raw numeric dimensions.
    pub dictionary: Option<Dictionary>,
}

/// The schema of a table: an ordered list of dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    dims: Vec<Dimension>,
}

impl Schema {
    /// A schema of `d` anonymous raw dimensions (`"dim0"`, `"dim1"`, …)
    /// without dictionaries — the natural choice for synthetic workloads
    /// whose values are opaque integer codes.
    pub fn raw(d: usize) -> Result<Self> {
        if d == 0 {
            return Err(CoreError::EmptySchema);
        }
        Ok(Self {
            dims: (0..d).map(|j| Dimension { name: format!("dim{j}"), dictionary: None }).collect(),
        })
    }

    /// A schema with named, dictionary-backed dimensions.
    pub fn named<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let dims: Vec<Dimension> = names
            .into_iter()
            .map(|n| Dimension { name: n.into(), dictionary: Some(Dictionary::new()) })
            .collect();
        if dims.is_empty() {
            return Err(CoreError::EmptySchema);
        }
        Ok(Self { dims })
    }

    /// Build a schema from fully-specified dimensions.
    pub fn from_dimensions(dims: Vec<Dimension>) -> Result<Self> {
        if dims.is_empty() {
            return Err(CoreError::EmptySchema);
        }
        Ok(Self { dims })
    }

    /// Dimensionality `d` of the space.
    pub fn dimensionality(&self) -> usize {
        self.dims.len()
    }

    /// All dimensions in order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// The dimension at index `dim`.
    pub fn dimension(&self, dim: DimId) -> &Dimension {
        &self.dims[dim.index()]
    }

    /// Mutable access to a dimension (used by builders to intern labels).
    pub(crate) fn dimension_mut(&mut self, dim: DimId) -> &mut Dimension {
        &mut self.dims[dim.index()]
    }

    /// Intern `label` on `dim`, failing if the dimension is raw.
    pub fn intern(&mut self, dim: DimId, label: &str) -> Result<ValueId> {
        match &mut self.dimension_mut(dim).dictionary {
            Some(d) => Ok(d.intern(label)),
            None => Err(CoreError::NoDictionary { dim }),
        }
    }

    /// Resolve `label` on `dim` without interning.
    pub fn resolve(&self, dim: DimId, label: &str) -> Result<ValueId> {
        let dict =
            self.dimension(dim).dictionary.as_ref().ok_or(CoreError::NoDictionary { dim })?;
        dict.get(label).ok_or_else(|| CoreError::UnknownValue { dim, label: label.to_owned() })
    }

    /// The label of `value` on `dim`, falling back to the numeric code for
    /// raw dimensions.
    pub fn display_value(&self, dim: DimId, value: ValueId) -> String {
        match &self.dimension(dim).dictionary {
            Some(d) => d.label(value).map(str::to_owned).unwrap_or_else(|| value.to_string()),
            None => value.to_string(),
        }
    }

    /// Project the schema onto a subset of dimensions (used e.g. to derive
    /// the 4-dimensional Nursery variant of Figure 15 from the 8-d one).
    pub fn project(&self, dims: &[DimId]) -> Result<Self> {
        let selected: Vec<Dimension> = dims.iter().map(|&j| self.dimension(j).clone()).collect();
        Self::from_dimensions(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_idempotently() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(a), Some("alpha"));
        assert_eq!(d.get("beta"), Some(b));
        assert_eq!(d.get("gamma"), None);
    }

    #[test]
    fn raw_schema_has_no_dictionaries() {
        let s = Schema::raw(3).unwrap();
        assert_eq!(s.dimensionality(), 3);
        assert!(s.dimension(DimId(0)).dictionary.is_none());
        assert_eq!(s.dimension(DimId(2)).name, "dim2");
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert_eq!(Schema::raw(0).unwrap_err(), CoreError::EmptySchema);
        assert!(Schema::named(Vec::<String>::new()).is_err());
    }

    #[test]
    fn named_schema_interns_and_resolves() {
        let mut s = Schema::named(["view", "heating"]).unwrap();
        let beach = s.intern(DimId(0), "beach").unwrap();
        assert_eq!(s.resolve(DimId(0), "beach").unwrap(), beach);
        assert!(matches!(s.resolve(DimId(0), "city"), Err(CoreError::UnknownValue { .. })));
        assert_eq!(s.display_value(DimId(0), beach), "beach");
    }

    #[test]
    fn raw_schema_rejects_labels() {
        let mut s = Schema::raw(1).unwrap();
        assert!(matches!(s.intern(DimId(0), "x"), Err(CoreError::NoDictionary { .. })));
        assert!(matches!(s.resolve(DimId(0), "x"), Err(CoreError::NoDictionary { .. })));
        assert_eq!(s.display_value(DimId(0), ValueId(5)), "v5");
    }

    #[test]
    fn projection_selects_dimensions_in_order() {
        let s = Schema::named(["a", "b", "c"]).unwrap();
        let p = s.project(&[DimId(2), DimId(0)]).unwrap();
        assert_eq!(p.dimensionality(), 2);
        assert_eq!(p.dimension(DimId(0)).name, "c");
        assert_eq!(p.dimension(DimId(1)).name, "a");
    }

    #[test]
    fn from_labels_preserves_order() {
        let d = Dictionary::from_labels(["x", "y", "z"]);
        assert_eq!(d.label(ValueId(0)), Some("x"));
        assert_eq!(d.label(ValueId(2)), Some("z"));
    }
}
