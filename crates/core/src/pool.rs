//! Thread accounting shared across the workspace.
//!
//! Every driver that fans work out over threads needs the same two
//! decisions made consistently:
//!
//! 1. **How many threads does "default" mean?** [`num_threads`] is the one
//!    place that resolves `Option<usize>` (a `--threads` flag, a
//!    `QueryOptions` field) against `std::thread::available_parallelism`,
//!    replacing the `available_parallelism().map(Into::into).unwrap_or(1)`
//!    fallback that used to be copy-pasted across the engine, the service
//!    stress tests, and `serve`.
//! 2. **Who may spawn what?** The all-sky driver parallelises over
//!    *objects*; the exact solver can parallelise *within* one component's
//!    inclusion–exclusion DFS. Running both at full width would
//!    oversubscribe the machine. [`ThreadBudget`] is a token pot holding
//!    the threads *not* already committed to object-level workers; a
//!    worker that meets an oversized component takes a [`ThreadLease`] for
//!    however many spare threads exist (possibly zero) and the DFS runs
//!    `1 + granted` wide. Dropping the lease returns the tokens. One pot,
//!    no nested oversubscription.
//!
//! Leases are advisory capacity, not OS threads: the pot never blocks, and
//! a zero-token grant simply means "stay serial".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Resolve a requested thread count against the machine.
///
/// `None` means "use every available hardware thread"; `Some(0)` is
/// sanitised to 1. The result is *not* clamped to any workload size —
/// callers dividing `n` items among workers should clamp themselves.
pub fn num_threads(requested: Option<usize>) -> usize {
    requested
        .unwrap_or_else(|| std::thread::available_parallelism().map(Into::into).unwrap_or(1))
        .max(1)
}

/// A pot of spare thread tokens shared by all workers of one request.
///
/// Created by a driver with the threads it did **not** commit to top-level
/// workers; workers lease from it when they meet work items big enough to
/// split further (the within-component parallel DFS).
#[derive(Debug, Default)]
pub struct ThreadBudget {
    spare: AtomicUsize,
}

impl ThreadBudget {
    /// A pot holding `spare` tokens.
    pub fn new(spare: usize) -> Arc<Self> {
        Arc::new(Self { spare: AtomicUsize::new(spare) })
    }

    /// Tokens currently unleased (a racy snapshot, for telemetry/tests).
    pub fn spare(&self) -> usize {
        self.spare.load(Ordering::Relaxed)
    }

    /// Return `tokens` to the pot without a lease.
    ///
    /// This is how a multi-shard driver shares one allowance: each shard
    /// is handed a fixed worker count up front, and a shard whose slice of
    /// the workload cannot use its full grant deposits the difference back
    /// so other shards' intra-component DFS leases can draw on it.
    pub fn deposit(&self, tokens: usize) {
        if tokens > 0 {
            self.spare.fetch_add(tokens, Ordering::AcqRel);
        }
    }

    /// Take up to `want` tokens, without blocking. The returned lease may
    /// hold fewer tokens than requested — including zero.
    pub fn lease(self: &Arc<Self>, want: usize) -> ThreadLease {
        let mut cur = self.spare.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return ThreadLease { budget: None, granted: 0 };
            }
            match self.spare.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return ThreadLease { budget: Some(Arc::clone(self)), granted: take },
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A grant of extra threads from a [`ThreadBudget`]; tokens return to the
/// pot on drop.
#[derive(Debug, Default)]
pub struct ThreadLease {
    budget: Option<Arc<ThreadBudget>>,
    granted: usize,
}

impl ThreadLease {
    /// The empty lease: zero extra threads, tied to no pot.
    pub fn none() -> Self {
        Self::default()
    }

    /// Extra threads granted beyond the caller's own.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        if let Some(budget) = self.budget.take() {
            budget.spare.fetch_add(self.granted, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_resolves_requests() {
        assert_eq!(num_threads(Some(3)), 3);
        assert_eq!(num_threads(Some(0)), 1, "zero sanitised to one");
        assert!(num_threads(None) >= 1);
    }

    #[test]
    fn leases_draw_down_and_refill_the_pot() {
        let pot = ThreadBudget::new(3);
        let a = pot.lease(2);
        assert_eq!(a.granted(), 2);
        assert_eq!(pot.spare(), 1);
        let b = pot.lease(5);
        assert_eq!(b.granted(), 1, "grants are best-effort, never blocking");
        assert_eq!(pot.spare(), 0);
        let c = pot.lease(1);
        assert_eq!(c.granted(), 0);
        drop(a);
        assert_eq!(pot.spare(), 2);
        drop(b);
        drop(c);
        assert_eq!(pot.spare(), 3);
    }

    #[test]
    fn deposits_grow_the_pot() {
        let pot = ThreadBudget::new(0);
        assert_eq!(pot.lease(1).granted(), 0);
        pot.deposit(2);
        assert_eq!(pot.spare(), 2);
        let l = pot.lease(3);
        assert_eq!(l.granted(), 2);
        drop(l);
        pot.deposit(0);
        assert_eq!(pot.spare(), 2);
    }

    #[test]
    fn empty_lease_is_inert() {
        let l = ThreadLease::none();
        assert_eq!(l.granted(), 0);
        drop(l);
    }
}
