//! Uncertain preference models.
//!
//! The paper models the preference between two distinct values `a`, `b` on
//! one dimension as a pair of probabilities
//!
//! ```text
//! Pr(a ≺ b) + Pr(b ≺ a) ≤ 1
//! ```
//!
//! where the slack `1 − Pr(a ≺ b) − Pr(b ≺ a)` is the chance the two values
//! are *incomparable* to the population. Identical values are equally
//! preferred with certainty. Preferences on different dimensions, and
//! preferences sharing a common value, are assumed mutually independent
//! (Section 2); this is exactly the assumption that makes the coin view of
//! [`crate::coins`] sound.
//!
//! Implementations provided here:
//!
//! * [`TablePreferences`] — explicit per-pair probabilities, validated at
//!   insertion; the model of choice for small spaces and the paper's worked
//!   examples.
//! * [`SeededPreferences`] — a *stateless* model deriving each pair's
//!   probabilities from a hash of `(seed, dim, pair)`. This is how the
//!   100 000-object block-zipf experiments avoid materialising a quadratic
//!   number of pairs, while staying perfectly reproducible.
//! * [`DeterministicOrder`] — degenerate 0/1 preferences induced by the
//!   numeric order of value codes; used to cross-check against classical
//!   (certain) skyline computation.

mod elicit;
mod generate;
mod order;
mod overlay;
mod seeded;
mod table;

pub use elicit::{Ballot, BradleyTerry, ElicitationBuilder, VoteTally};
pub use generate::{generate_table_preferences, PrefDistribution};
pub use order::DeterministicOrder;
pub use overlay::{DeltaOverlay, OverlayPreferences, PrefDelta};
pub use seeded::{PairLaw, SeededPreferences};
pub use table::{TablePreferences, TablePreferencesBuilder};

use crate::error::{check_probability, CoreError, Result};
use crate::types::{DimId, ValueId};

/// The two directed probabilities of one uncertain preference pair.
///
/// `forward` is `Pr(a ≺ b)` and `backward` is `Pr(b ≺ a)` for the ordered
/// query `(a, b)`; their sum must not exceed one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefPair {
    /// `Pr(a ≺ b)`.
    pub forward: f64,
    /// `Pr(b ≺ a)`.
    pub backward: f64,
}

impl PrefPair {
    /// Build a validated pair.
    pub fn new(forward: f64, backward: f64) -> Result<Self> {
        check_probability(forward, "Pr(a ≺ b)")?;
        check_probability(backward, "Pr(b ≺ a)")?;
        // Tolerate tiny floating slop from generators that draw `p` and use
        // `1 - p`: the model constraint is semantic, not bit-exact.
        if forward + backward > 1.0 + 1e-12 {
            return Err(CoreError::PairMassExceedsOne {
                dim: DimId(0),
                a: ValueId(0),
                b: ValueId(0),
                total: forward + backward,
            });
        }
        Ok(Self { forward, backward })
    }

    /// The unanimous fifty-fifty pair used throughout the paper's examples.
    pub fn half() -> Self {
        Self { forward: 0.5, backward: 0.5 }
    }

    /// A certain preference `a ≺ b`.
    pub fn certain_forward() -> Self {
        Self { forward: 1.0, backward: 0.0 }
    }

    /// Probability that the two values are incomparable.
    pub fn incomparable(&self) -> f64 {
        (1.0 - self.forward - self.backward).max(0.0)
    }

    /// The pair for the reversed query `(b, a)`.
    pub fn reversed(&self) -> Self {
        Self { forward: self.backward, backward: self.forward }
    }
}

/// A model assigning uncertain preferences to every value pair of every
/// dimension.
///
/// # Contract
///
/// * `pr_strict(dim, a, a) == 0.0` — a value is never *strictly* preferred
///   to itself (identical values are *equally* preferred with certainty).
/// * `pr_strict(dim, a, b) + pr_strict(dim, b, a) <= 1` for `a != b`.
/// * Values returned are probabilities in `[0, 1]` and never `NaN`.
///
/// All provided implementations uphold the contract; hand-rolled
/// implementations can be checked with [`validate_model_on_pairs`].
pub trait PreferenceModel {
    /// Probability that value `a` is strictly preferred to value `b` on
    /// dimension `dim`.
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64;

    /// Probability that `a` is preferred *or equal* to `b`: `1` for the
    /// same value, the strict probability otherwise. This is the `⪯` of
    /// Equation 2.
    fn pr_weak(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            1.0
        } else {
            self.pr_strict(dim, a, b)
        }
    }

    /// Both directions of the pair `(a, b)` at once.
    fn pair(&self, dim: DimId, a: ValueId, b: ValueId) -> PrefPair {
        PrefPair { forward: self.pr_strict(dim, a, b), backward: self.pr_strict(dim, b, a) }
    }
}

// Allow `&M` wherever a model is expected.
impl<M: PreferenceModel + ?Sized> PreferenceModel for &M {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        (**self).pr_strict(dim, a, b)
    }
}

/// Check the [`PreferenceModel`] contract on an explicit list of pairs.
///
/// Returns the first violation found. Useful in tests and when accepting a
/// user-supplied model at an API boundary.
pub fn validate_model_on_pairs<M: PreferenceModel>(
    model: &M,
    pairs: &[(DimId, ValueId, ValueId)],
) -> Result<()> {
    for &(dim, a, b) in pairs {
        let f = model.pr_strict(dim, a, b);
        let r = model.pr_strict(dim, b, a);
        check_probability(f, "pr_strict forward")?;
        check_probability(r, "pr_strict backward")?;
        if a == b && f != 0.0 {
            return Err(CoreError::SelfPreference { dim, value: a });
        }
        if a != b && f + r > 1.0 + 1e-12 {
            return Err(CoreError::PairMassExceedsOne { dim, a, b, total: f + r });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pref_pair_validates_mass() {
        assert!(PrefPair::new(0.6, 0.5).is_err());
        let p = PrefPair::new(0.3, 0.4).unwrap();
        assert!((p.incomparable() - 0.3).abs() < 1e-12);
        assert_eq!(p.reversed().forward, 0.4);
    }

    #[test]
    fn half_pair_is_complementary() {
        let h = PrefPair::half();
        assert_eq!(h.incomparable(), 0.0);
        assert_eq!(h.forward, 0.5);
    }

    #[test]
    fn weak_preference_of_identical_values_is_one() {
        struct Zero;
        impl PreferenceModel for Zero {
            fn pr_strict(&self, _: DimId, _: ValueId, _: ValueId) -> f64 {
                0.0
            }
        }
        let m = Zero;
        assert_eq!(m.pr_weak(DimId(0), ValueId(1), ValueId(1)), 1.0);
        assert_eq!(m.pr_weak(DimId(0), ValueId(1), ValueId(2)), 0.0);
    }

    #[test]
    fn validation_catches_contract_violations() {
        struct Bad;
        impl PreferenceModel for Bad {
            fn pr_strict(&self, _: DimId, _: ValueId, _: ValueId) -> f64 {
                0.7 // 0.7 + 0.7 > 1 for a != b, nonzero for a == a
            }
        }
        let pairs = [(DimId(0), ValueId(0), ValueId(1))];
        assert!(matches!(
            validate_model_on_pairs(&Bad, &pairs),
            Err(CoreError::PairMassExceedsOne { .. })
        ));
        let selfpair = [(DimId(0), ValueId(3), ValueId(3))];
        assert!(matches!(
            validate_model_on_pairs(&Bad, &selfpair),
            Err(CoreError::SelfPreference { .. })
        ));
    }
}
