//! Stateless, hash-derived preference models for large spaces.
//!
//! A block-zipf experiment with 100 000 objects touches millions of value
//! pairs; materialising them in a hash table would dominate memory and set-up
//! time. [`SeededPreferences`] instead derives every pair's probabilities
//! *on demand* from a 64-bit seed and the pair identity, so the model is
//! O(1) memory, trivially `Sync`, and bit-reproducible across runs, threads
//! and platforms — the properties the Section 6 harness relies on.

use crate::types::{DimId, ValueId};

use super::{PrefPair, PreferenceModel};

/// How pair probabilities are derived from the hash stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairLaw {
    /// Every pair is the paper's unanimous fifty-fifty coin:
    /// `Pr(a ≺ b) = Pr(b ≺ a) = ½` (used by the worked examples and by the
    /// #P-hardness reduction).
    Unanimous,
    /// `Pr(lo ≺ hi) = p` with `p ~ U[0, 1]` and `Pr(hi ≺ lo) = 1 − p`:
    /// the evaluation-section default ("preference probabilities are
    /// randomly generated between `[0, 1]`", no incomparability mass).
    Complementary,
    /// `(p, q)` drawn uniformly from the simplex `p + q ≤ 1`, leaving
    /// genuine incomparability mass `1 − p − q`.
    Simplex,
    /// Certain preferences: the pair's winner is decided by a hash coin,
    /// with probability 1. Degenerates the model to classical (though
    /// possibly cyclic) preferences.
    CertainCoin,
    /// Certain preferences induced by value-code order: the smaller code is
    /// preferred with probability 1. Acyclic; matches classical skyline
    /// semantics where lower values are better.
    CertainAscending,
}

/// A [`PreferenceModel`] computing each pair from `hash(seed, dim, pair)`.
#[derive(Debug, Clone, Copy)]
pub struct SeededPreferences {
    seed: u64,
    law: PairLaw,
}

impl SeededPreferences {
    /// Create a model with the given seed and pair law.
    pub fn new(seed: u64, law: PairLaw) -> Self {
        Self { seed, law }
    }

    /// The evaluation-section default: complementary `U[0, 1]` pairs.
    pub fn complementary(seed: u64) -> Self {
        Self::new(seed, PairLaw::Complementary)
    }

    /// Unanimous fifty-fifty pairs (paper examples).
    pub fn unanimous() -> Self {
        Self::new(0, PairLaw::Unanimous)
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pair law.
    pub fn law(&self) -> PairLaw {
        self.law
    }

    /// The canonical pair `(lo, hi)` probabilities; `forward` is
    /// `Pr(lo ≺ hi)`.
    fn canonical_pair(&self, dim: DimId, lo: ValueId, hi: ValueId) -> PrefPair {
        debug_assert!(lo.0 < hi.0);
        match self.law {
            PairLaw::Unanimous => PrefPair::half(),
            PairLaw::Complementary => {
                let p = unit_f64(self.pair_hash(dim, lo, hi, 0));
                PrefPair { forward: p, backward: 1.0 - p }
            }
            PairLaw::Simplex => {
                // Uniform over the triangle {p, q >= 0, p + q <= 1}: draw two
                // U[0,1] variates, fold the upper triangle onto the lower.
                let mut u = unit_f64(self.pair_hash(dim, lo, hi, 0));
                let mut v = unit_f64(self.pair_hash(dim, lo, hi, 1));
                if u + v > 1.0 {
                    u = 1.0 - u;
                    v = 1.0 - v;
                }
                PrefPair { forward: u, backward: v }
            }
            PairLaw::CertainCoin => {
                if self.pair_hash(dim, lo, hi, 0) & 1 == 0 {
                    PrefPair { forward: 1.0, backward: 0.0 }
                } else {
                    PrefPair { forward: 0.0, backward: 1.0 }
                }
            }
            PairLaw::CertainAscending => PrefPair { forward: 1.0, backward: 0.0 },
        }
    }

    #[inline]
    fn pair_hash(&self, dim: DimId, lo: ValueId, hi: ValueId, stream: u64) -> u64 {
        // SplitMix64 over a fixed mixing of the identifying tuple. SplitMix64
        // is a bijective finaliser with full avalanche, so distinct pairs get
        // independent-looking streams from any seed.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((dim.0 as u64) << 40)
            .wrapping_add((lo.0 as u64) << 20)
            .wrapping_add(hi.0 as u64)
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x = splitmix64(&mut x);
        x
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl PreferenceModel for SeededPreferences {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            return 0.0;
        }
        if a.0 < b.0 {
            self.canonical_pair(dim, a, b).forward
        } else {
            self.canonical_pair(dim, b, a).backward
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::validate_model_on_pairs;

    fn some_pairs() -> Vec<(DimId, ValueId, ValueId)> {
        let mut pairs = Vec::new();
        for d in 0..4u32 {
            for a in 0..8u32 {
                for b in 0..8u32 {
                    pairs.push((DimId(d), ValueId(a), ValueId(b)));
                }
            }
        }
        pairs
    }

    #[test]
    fn all_laws_satisfy_the_model_contract() {
        for law in [
            PairLaw::Unanimous,
            PairLaw::Complementary,
            PairLaw::Simplex,
            PairLaw::CertainCoin,
            PairLaw::CertainAscending,
        ] {
            let m = SeededPreferences::new(42, law);
            validate_model_on_pairs(&m, &some_pairs()).unwrap();
        }
    }

    #[test]
    fn deterministic_across_calls_and_clones() {
        let m = SeededPreferences::complementary(7);
        let p1 = m.pr_strict(DimId(2), ValueId(10), ValueId(20));
        let p2 = m.pr_strict(DimId(2), ValueId(10), ValueId(20));
        let p3 = { m }.pr_strict(DimId(2), ValueId(10), ValueId(20));
        assert_eq!(p1, p2);
        assert_eq!(p1, p3);
    }

    #[test]
    fn orientation_is_consistent() {
        let m = SeededPreferences::complementary(7);
        let f = m.pr_strict(DimId(0), ValueId(3), ValueId(9));
        let b = m.pr_strict(DimId(0), ValueId(9), ValueId(3));
        assert!((f + b - 1.0).abs() < 1e-12, "complementary law sums to 1");
    }

    #[test]
    fn different_seeds_and_dims_decorrelate() {
        let m1 = SeededPreferences::complementary(1);
        let m2 = SeededPreferences::complementary(2);
        let a = m1.pr_strict(DimId(0), ValueId(0), ValueId(1));
        let b = m2.pr_strict(DimId(0), ValueId(0), ValueId(1));
        let c = m1.pr_strict(DimId(1), ValueId(0), ValueId(1));
        // Not a statistical test, just a smoke check that the tuple actually
        // feeds the hash.
        assert!(a != b || a != c);
    }

    #[test]
    fn complementary_values_look_uniform() {
        let m = SeededPreferences::complementary(99);
        let n = 4000;
        let mean: f64 =
            (0..n).map(|i| m.pr_strict(DimId(0), ValueId(2 * i), ValueId(2 * i + 1))).sum::<f64>()
                / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
    }

    #[test]
    fn simplex_law_leaves_incomparable_mass() {
        let m = SeededPreferences::new(5, PairLaw::Simplex);
        let mut any_incomparable = false;
        for i in 0..100u32 {
            let p = m.pair(DimId(0), ValueId(2 * i), ValueId(2 * i + 1));
            assert!(p.forward + p.backward <= 1.0 + 1e-12);
            if p.incomparable() > 0.05 {
                any_incomparable = true;
            }
        }
        assert!(any_incomparable);
    }

    #[test]
    fn certain_ascending_prefers_smaller_codes() {
        let m = SeededPreferences::new(0, PairLaw::CertainAscending);
        assert_eq!(m.pr_strict(DimId(0), ValueId(1), ValueId(5)), 1.0);
        assert_eq!(m.pr_strict(DimId(0), ValueId(5), ValueId(1)), 0.0);
    }

    #[test]
    fn unanimous_matches_paper_examples() {
        let m = SeededPreferences::unanimous();
        assert_eq!(m.pr_strict(DimId(3), ValueId(100), ValueId(7)), 0.5);
    }
}
