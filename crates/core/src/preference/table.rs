//! Explicit per-pair preference tables.

use std::collections::HashMap;

use crate::error::{check_probability, CoreError, Result};
use crate::types::{DimId, ValueId};

use super::{PrefPair, PreferenceModel};

/// Canonical storage key: dimension plus the unordered value pair with the
/// smaller code first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PairKey {
    dim: u32,
    lo: u32,
    hi: u32,
}

impl PairKey {
    fn new(dim: DimId, a: ValueId, b: ValueId) -> (Self, bool) {
        // The boolean reports whether (a, b) maps to the canonical (lo, hi)
        // orientation, i.e. whether `forward` means `Pr(a ≺ b)`.
        if a.0 <= b.0 {
            (Self { dim: dim.0, lo: a.0, hi: b.0 }, true)
        } else {
            (Self { dim: dim.0, lo: b.0, hi: a.0 }, false)
        }
    }
}

/// A [`PreferenceModel`] backed by an explicit hash table of pairs.
///
/// Pairs not present fall back to a configurable default (incomparable by
/// default, i.e. both directions have probability zero). Every insertion is
/// validated against the model contract.
#[derive(Debug, Clone)]
pub struct TablePreferences {
    pairs: HashMap<PairKey, PrefPair>,
    default: PrefPair,
}

impl TablePreferences {
    /// An empty table whose missing pairs are incomparable with certainty.
    pub fn new() -> Self {
        Self { pairs: HashMap::new(), default: PrefPair { forward: 0.0, backward: 0.0 } }
    }

    /// An empty table whose missing pairs default to `default`.
    ///
    /// `TablePreferences::with_default(PrefPair::half())` reproduces the
    /// paper's examples, where "any two attribute values are equally
    /// preferred by the population".
    pub fn with_default(default: PrefPair) -> Self {
        Self { pairs: HashMap::new(), default }
    }

    /// Insert (or overwrite) the pair `(a, b)` on `dim` with
    /// `Pr(a ≺ b) = forward` and `Pr(b ≺ a) = backward`.
    pub fn set(
        &mut self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<()> {
        if a == b {
            return Err(CoreError::SelfPreference { dim, value: a });
        }
        check_probability(forward, "Pr(a ≺ b)")?;
        check_probability(backward, "Pr(b ≺ a)")?;
        if forward + backward > 1.0 + 1e-12 {
            return Err(CoreError::PairMassExceedsOne { dim, a, b, total: forward + backward });
        }
        let (key, canonical) = PairKey::new(dim, a, b);
        let stored = if canonical {
            PrefPair { forward, backward }
        } else {
            PrefPair { forward: backward, backward: forward }
        };
        self.pairs.insert(key, stored);
        Ok(())
    }

    /// Insert a *complementary* pair: `Pr(a ≺ b) = p`, `Pr(b ≺ a) = 1 − p`
    /// (no incomparability mass). This matches the paper's experimental
    /// setup where "preference probabilities are randomly generated between
    /// `[0, 1]`".
    pub fn set_complementary(&mut self, dim: DimId, a: ValueId, b: ValueId, p: f64) -> Result<()> {
        check_probability(p, "Pr(a ≺ b)")?;
        self.set(dim, a, b, p, 1.0 - p)
    }

    /// Number of explicitly stored pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair has been stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The default pair used for missing entries.
    pub fn default_pair(&self) -> PrefPair {
        self.default
    }

    /// Whether the pair `(a, b)` on `dim` is explicitly stored.
    pub fn contains(&self, dim: DimId, a: ValueId, b: ValueId) -> bool {
        let (key, _) = PairKey::new(dim, a, b);
        self.pairs.contains_key(&key)
    }

    /// Iterate over every explicitly stored pair in canonical orientation:
    /// `(dim, lo, hi, pair)` with `pair.forward = Pr(lo ≺ hi)`.
    ///
    /// Iteration order is unspecified (hash order); callers that need a
    /// stable order should sort.
    pub fn pairs(&self) -> impl Iterator<Item = (DimId, ValueId, ValueId, PrefPair)> + '_ {
        self.pairs.iter().map(|(k, &p)| (DimId(k.dim), ValueId(k.lo), ValueId(k.hi), p))
    }
}

impl Default for TablePreferences {
    fn default() -> Self {
        Self::new()
    }
}

impl PreferenceModel for TablePreferences {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (key, canonical) = PairKey::new(dim, a, b);
        let pair = self.pairs.get(&key).copied().unwrap_or(self.default);
        if canonical {
            pair.forward
        } else {
            pair.backward
        }
    }
}

/// Builder that accumulates pairs and validates global consistency once.
///
/// Equivalent to calling [`TablePreferences::set`] repeatedly, but reads as
/// declarative fixture code in tests and examples.
#[derive(Debug, Default)]
pub struct TablePreferencesBuilder {
    entries: Vec<(DimId, ValueId, ValueId, f64, f64)>,
    default: Option<PrefPair>,
}

impl TablePreferencesBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default pair for missing entries.
    pub fn default_pair(mut self, pair: PrefPair) -> Self {
        self.default = Some(pair);
        self
    }

    /// Queue a pair.
    pub fn pair(mut self, dim: DimId, a: ValueId, b: ValueId, forward: f64, backward: f64) -> Self {
        self.entries.push((dim, a, b, forward, backward));
        self
    }

    /// Queue a complementary pair (`backward = 1 − forward`).
    pub fn complementary(self, dim: DimId, a: ValueId, b: ValueId, forward: f64) -> Self {
        let backward = 1.0 - forward;
        self.pair(dim, a, b, forward, backward)
    }

    /// Validate everything and build the table.
    pub fn build(self) -> Result<TablePreferences> {
        let mut t = match self.default {
            Some(d) => TablePreferences::with_default(d),
            None => TablePreferences::new(),
        };
        for (dim, a, b, f, r) in self.entries {
            t.set(dim, a, b, f, r)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_pairs_are_orientation_aware() {
        let mut t = TablePreferences::new();
        t.set(DimId(0), ValueId(5), ValueId(2), 0.7, 0.1).unwrap();
        assert!((t.pr_strict(DimId(0), ValueId(5), ValueId(2)) - 0.7).abs() < 1e-15);
        assert!((t.pr_strict(DimId(0), ValueId(2), ValueId(5)) - 0.1).abs() < 1e-15);
        let pair = t.pair(DimId(0), ValueId(2), ValueId(5));
        assert!((pair.incomparable() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn missing_pairs_use_default() {
        let t = TablePreferences::with_default(PrefPair::half());
        assert_eq!(t.pr_strict(DimId(3), ValueId(0), ValueId(1)), 0.5);
        let t2 = TablePreferences::new();
        assert_eq!(t2.pr_strict(DimId(3), ValueId(0), ValueId(1)), 0.0);
    }

    #[test]
    fn self_pairs_are_rejected_and_never_strict() {
        let mut t = TablePreferences::new();
        assert!(matches!(
            t.set(DimId(0), ValueId(1), ValueId(1), 0.5, 0.5),
            Err(CoreError::SelfPreference { .. })
        ));
        assert_eq!(t.pr_strict(DimId(0), ValueId(1), ValueId(1)), 0.0);
        assert_eq!(t.pr_weak(DimId(0), ValueId(1), ValueId(1)), 1.0);
    }

    #[test]
    fn mass_validation_on_insert() {
        let mut t = TablePreferences::new();
        assert!(t.set(DimId(0), ValueId(0), ValueId(1), 0.9, 0.2).is_err());
        assert!(t.set(DimId(0), ValueId(0), ValueId(1), f64::NAN, 0.2).is_err());
        assert!(t.set(DimId(0), ValueId(0), ValueId(1), 0.9, 0.1).is_ok());
    }

    #[test]
    fn complementary_insert_has_no_incomparable_mass() {
        let mut t = TablePreferences::new();
        t.set_complementary(DimId(1), ValueId(0), ValueId(9), 0.25).unwrap();
        let p = t.pair(DimId(1), ValueId(0), ValueId(9));
        assert!((p.forward - 0.25).abs() < 1e-15);
        assert!(p.incomparable() < 1e-12);
    }

    #[test]
    fn builder_round_trips() {
        let t = TablePreferencesBuilder::new()
            .default_pair(PrefPair::half())
            .pair(DimId(0), ValueId(0), ValueId(1), 0.2, 0.3)
            .complementary(DimId(1), ValueId(4), ValueId(2), 0.8)
            .build()
            .unwrap();
        assert_eq!(t.len(), 2);
        assert!((t.pr_strict(DimId(1), ValueId(2), ValueId(4)) - 0.2).abs() < 1e-12);
        assert_eq!(t.pr_strict(DimId(9), ValueId(0), ValueId(1)), 0.5);
        assert!(t.contains(DimId(0), ValueId(1), ValueId(0)));
        assert!(!t.contains(DimId(0), ValueId(1), ValueId(2)));
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let r =
            TablePreferencesBuilder::new().pair(DimId(0), ValueId(0), ValueId(1), 0.8, 0.8).build();
        assert!(matches!(r, Err(CoreError::PairMassExceedsOne { .. })));
    }

    #[test]
    fn overwriting_a_pair_keeps_latest() {
        let mut t = TablePreferences::new();
        t.set(DimId(0), ValueId(0), ValueId(1), 0.1, 0.2).unwrap();
        t.set(DimId(0), ValueId(1), ValueId(0), 0.6, 0.3).unwrap();
        assert!((t.pr_strict(DimId(0), ValueId(1), ValueId(0)) - 0.6).abs() < 1e-15);
        assert!((t.pr_strict(DimId(0), ValueId(0), ValueId(1)) - 0.3).abs() < 1e-15);
        assert_eq!(t.len(), 1);
    }
}
