//! RNG-driven generation of explicit preference tables for a given data set.
//!
//! [`SeededPreferences`](super::SeededPreferences) derives pairs lazily and
//! is the right tool at scale; this module instead *materialises* a
//! [`TablePreferences`](super::TablePreferences) covering every pair of
//! values that actually occurs in a table — which is what the paper's small
//! worked examples and the deterministic-algorithm experiments need, and
//! what users with externally elicited preferences will construct.

use rand::Rng;

use crate::error::Result;
use crate::table::Table;
use crate::types::{DimId, ValueId};

use super::table::TablePreferences;

/// The probability law used to draw each pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefDistribution {
    /// Every pair gets fixed symmetric probabilities `(p, p)`;
    /// `Unanimous(0.5)` is the paper's "equally preferred" setting. `p` must
    /// not exceed `0.5`.
    Unanimous(f64),
    /// `Pr(a ≺ b) = p ~ U[0, 1]`, `Pr(b ≺ a) = 1 − p` — the evaluation
    /// default.
    Complementary,
    /// `(p, q)` uniform over the simplex `p + q ≤ 1`.
    Simplex,
    /// Certain preferences with a random winner per pair.
    CertainCoin,
}

/// Draw preferences for every pair of distinct values co-occurring in each
/// column of `table`.
///
/// Pair enumeration is over the *observed* values of each column (sorted by
/// code), so generation cost is `O(Σ_j |V_j|²)` independent of the row
/// count. Missing pairs (values never seen together in this table) keep the
/// table default of "incomparable", which no `sky(O)` computation on this
/// table will ever consult.
pub fn generate_table_preferences<R: Rng>(
    table: &Table,
    dist: PrefDistribution,
    rng: &mut R,
) -> Result<TablePreferences> {
    let mut prefs = TablePreferences::new();
    for j in 0..table.dimensionality() {
        let dim = DimId::from(j);
        let mut values: Vec<ValueId> = table.column(dim).to_vec();
        values.sort_unstable();
        values.dedup();
        for (ia, &a) in values.iter().enumerate() {
            for &b in &values[ia + 1..] {
                let (f, r) = draw_pair(dist, rng)?;
                prefs.set(dim, a, b, f, r)?;
            }
        }
    }
    Ok(prefs)
}

fn draw_pair<R: Rng>(dist: PrefDistribution, rng: &mut R) -> Result<(f64, f64)> {
    Ok(match dist {
        PrefDistribution::Unanimous(p) => {
            // Validate via PrefPair's own checks by returning (p, p).
            (p, p)
        }
        PrefDistribution::Complementary => {
            let p: f64 = rng.random();
            (p, 1.0 - p)
        }
        PrefDistribution::Simplex => {
            let mut u: f64 = rng.random();
            let mut v: f64 = rng.random();
            if u + v > 1.0 {
                u = 1.0 - u;
                v = 1.0 - v;
            }
            (u, v)
        }
        PrefDistribution::CertainCoin => {
            if rng.random::<bool>() {
                (1.0, 0.0)
            } else {
                (0.0, 1.0)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::preference::PreferenceModel;

    fn table() -> Table {
        Table::from_rows_raw(2, &[vec![0, 1], vec![2, 1], vec![0, 3]]).unwrap()
    }

    #[test]
    fn covers_all_observed_pairs() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let p = generate_table_preferences(&t, PrefDistribution::Complementary, &mut rng).unwrap();
        // dim0 values {0, 2} -> 1 pair; dim1 values {1, 3} -> 1 pair.
        assert_eq!(p.len(), 2);
        assert!(p.contains(DimId(0), ValueId(0), ValueId(2)));
        assert!(p.contains(DimId(1), ValueId(1), ValueId(3)));
    }

    #[test]
    fn unanimous_half_reproduces_paper_setting() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let p = generate_table_preferences(&t, PrefDistribution::Unanimous(0.5), &mut rng).unwrap();
        assert_eq!(p.pr_strict(DimId(0), ValueId(0), ValueId(2)), 0.5);
        assert_eq!(p.pr_strict(DimId(0), ValueId(2), ValueId(0)), 0.5);
    }

    #[test]
    fn unanimous_over_half_is_rejected() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(generate_table_preferences(&t, PrefDistribution::Unanimous(0.6), &mut rng).is_err());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let t = table();
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_table_preferences(&t, PrefDistribution::Complementary, &mut rng).unwrap()
        };
        let (a, b, c) = (gen(9), gen(9), gen(10));
        let q = (DimId(0), ValueId(0), ValueId(2));
        assert_eq!(a.pr_strict(q.0, q.1, q.2), b.pr_strict(q.0, q.1, q.2));
        assert_ne!(a.pr_strict(q.0, q.1, q.2), c.pr_strict(q.0, q.1, q.2));
    }

    #[test]
    fn certain_coin_yields_zero_one() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(3);
        let p = generate_table_preferences(&t, PrefDistribution::CertainCoin, &mut rng).unwrap();
        let f = p.pr_strict(DimId(0), ValueId(0), ValueId(2));
        let b = p.pr_strict(DimId(0), ValueId(2), ValueId(0));
        assert!((f == 1.0 && b == 0.0) || (f == 0.0 && b == 1.0));
    }

    #[test]
    fn simplex_pairs_are_valid() {
        let t = Table::from_rows_raw(1, &(0..30).map(|v| vec![v]).collect::<Vec<_>>()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let p = generate_table_preferences(&t, PrefDistribution::Simplex, &mut rng).unwrap();
        assert_eq!(p.len(), 30 * 29 / 2);
    }
}
