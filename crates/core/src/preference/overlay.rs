//! Copy-on-write preference overlays.
//!
//! A live service re-elicits preference probabilities while requests are in
//! flight, but every base model in this crate — and any user-supplied
//! [`PreferenceModel`] — is immutable by design. [`OverlayPreferences`]
//! makes *any* base model editable without touching it: an explicit pair
//! table consulted first, falling through to the base for everything else.
//!
//! Edits are copy-on-write: [`OverlayPreferences::with_pair`] returns a
//! **new** overlay sharing nothing mutable with the old one, so a dataset
//! epoch can hand out `Arc`s of its overlay to concurrent readers and a
//! writer can derive the next epoch's overlay without synchronisation.
//! (This is also the shape per-user preference deltas will take: one base
//! model, one overlay per user.)

use std::collections::HashMap;

use crate::error::{check_probability, CoreError, Result};
use crate::types::{DimId, ValueId};

use super::{PrefPair, PreferenceModel};

/// Canonical overlay key: dimension plus the unordered value pair with the
/// smaller code first (mirrors `TablePreferences`' storage orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PairKey {
    dim: u32,
    lo: u32,
    hi: u32,
}

impl PairKey {
    fn new(dim: DimId, a: ValueId, b: ValueId) -> (Self, bool) {
        if a.0 <= b.0 {
            (Self { dim: dim.0, lo: a.0, hi: b.0 }, true)
        } else {
            (Self { dim: dim.0, lo: b.0, hi: a.0 }, false)
        }
    }
}

/// A [`PreferenceModel`] layering an explicit, edit-accumulating pair table
/// over an arbitrary base model. See the module docs above.
#[derive(Debug, Clone)]
pub struct OverlayPreferences<M> {
    base: M,
    overlay: HashMap<PairKey, PrefPair>,
}

impl<M: PreferenceModel> OverlayPreferences<M> {
    /// An overlay with no edits: behaves exactly like `base`.
    pub fn new(base: M) -> Self {
        Self { base, overlay: HashMap::new() }
    }

    /// The base model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Number of edited pairs.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Whether no pair has been edited.
    pub fn is_pristine(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Copy-on-write edit: a new overlay where the pair `(a, b)` on `dim`
    /// has `Pr(a ≺ b) = forward` and `Pr(b ≺ a) = backward`, validated
    /// against the model contract. `self` is untouched — readers holding
    /// it keep seeing the old probabilities.
    pub fn with_pair(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<Self>
    where
        M: Clone,
    {
        if a == b {
            return Err(CoreError::SelfPreference { dim, value: a });
        }
        check_probability(forward, "Pr(a ≺ b)")?;
        check_probability(backward, "Pr(b ≺ a)")?;
        if forward + backward > 1.0 + 1e-12 {
            return Err(CoreError::PairMassExceedsOne { dim, a, b, total: forward + backward });
        }
        let (key, canonical) = PairKey::new(dim, a, b);
        let stored = if canonical {
            PrefPair { forward, backward }
        } else {
            PrefPair { forward: backward, backward: forward }
        };
        let mut next = self.clone();
        next.overlay.insert(key, stored);
        Ok(next)
    }

    /// Iterate over the edited pairs in canonical orientation:
    /// `(dim, lo, hi, pair)` with `pair.forward = Pr(lo ≺ hi)`. Hash
    /// order; sort for stability.
    pub fn overlay_pairs(&self) -> impl Iterator<Item = (DimId, ValueId, ValueId, PrefPair)> + '_ {
        self.overlay.iter().map(|(k, &p)| (DimId(k.dim), ValueId(k.lo), ValueId(k.hi), p))
    }
}

impl<M: PreferenceModel> PreferenceModel for OverlayPreferences<M> {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            return 0.0;
        }
        // Pristine overlays are the steady state (every epoch between two
        // preference edits); skip the hash entirely.
        if self.overlay.is_empty() {
            return self.base.pr_strict(dim, a, b);
        }
        let (key, canonical) = PairKey::new(dim, a, b);
        match self.overlay.get(&key) {
            Some(pair) => {
                if canonical {
                    pair.forward
                } else {
                    pair.backward
                }
            }
            None => self.base.pr_strict(dim, a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::SeededPreferences;

    #[test]
    fn pristine_overlay_is_transparent() {
        let base = SeededPreferences::complementary(3);
        let o = OverlayPreferences::new(base);
        assert!(o.is_pristine());
        for (a, b) in [(0, 1), (4, 2), (9, 9)] {
            assert_eq!(
                o.pr_strict(DimId(0), ValueId(a), ValueId(b)),
                base.pr_strict(DimId(0), ValueId(a), ValueId(b)),
            );
        }
    }

    #[test]
    fn edits_are_copy_on_write_and_orientation_aware() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        let e = o.with_pair(DimId(1), ValueId(5), ValueId(2), 0.7, 0.1).unwrap();
        // Old overlay unchanged.
        assert!(o.is_pristine());
        assert_eq!(e.overlay_len(), 1);
        assert!((e.pr_strict(DimId(1), ValueId(5), ValueId(2)) - 0.7).abs() < 1e-15);
        assert!((e.pr_strict(DimId(1), ValueId(2), ValueId(5)) - 0.1).abs() < 1e-15);
        // Other pairs and dimensions still fall through to the base.
        assert_eq!(
            e.pr_strict(DimId(0), ValueId(5), ValueId(2)),
            o.pr_strict(DimId(0), ValueId(5), ValueId(2)),
        );
    }

    #[test]
    fn edits_validate_the_model_contract() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        assert!(matches!(
            o.with_pair(DimId(0), ValueId(1), ValueId(1), 0.5, 0.5),
            Err(CoreError::SelfPreference { .. })
        ));
        assert!(matches!(
            o.with_pair(DimId(0), ValueId(0), ValueId(1), 0.8, 0.8),
            Err(CoreError::PairMassExceedsOne { .. })
        ));
        assert!(o.with_pair(DimId(0), ValueId(0), ValueId(1), f64::NAN, 0.5).is_err());
    }

    #[test]
    fn latest_edit_wins() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        let e1 = o.with_pair(DimId(0), ValueId(0), ValueId(1), 0.1, 0.2).unwrap();
        let e2 = e1.with_pair(DimId(0), ValueId(1), ValueId(0), 0.6, 0.3).unwrap();
        assert_eq!(e2.overlay_len(), 1);
        assert!((e2.pr_strict(DimId(0), ValueId(1), ValueId(0)) - 0.6).abs() < 1e-15);
        assert!((e1.pr_strict(DimId(0), ValueId(0), ValueId(1)) - 0.1).abs() < 1e-15);
    }
}
