//! Copy-on-write preference overlays.
//!
//! A live service re-elicits preference probabilities while requests are in
//! flight, but every base model in this crate — and any user-supplied
//! [`PreferenceModel`] — is immutable by design. [`OverlayPreferences`]
//! makes *any* base model editable without touching it: an explicit pair
//! table consulted first, falling through to the base for everything else.
//!
//! Edits are copy-on-write: [`OverlayPreferences::with_pair`] returns a
//! **new** overlay sharing nothing mutable with the old one, so a dataset
//! epoch can hand out `Arc`s of its overlay to concurrent readers and a
//! writer can derive the next epoch's overlay without synchronisation.
//! (This is also the shape per-user preference deltas will take: one base
//! model, one overlay per user.)

use std::collections::HashMap;

use crate::error::{check_probability, CoreError, Result};
use crate::types::{DimId, ValueId};

use super::{PrefPair, PreferenceModel};

/// Canonical overlay key: dimension plus the unordered value pair with the
/// smaller code first (mirrors `TablePreferences`' storage orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PairKey {
    dim: u32,
    lo: u32,
    hi: u32,
}

impl PairKey {
    fn new(dim: DimId, a: ValueId, b: ValueId) -> (Self, bool) {
        if a.0 <= b.0 {
            (Self { dim: dim.0, lo: a.0, hi: b.0 }, true)
        } else {
            (Self { dim: dim.0, lo: b.0, hi: a.0 }, false)
        }
    }
}

/// Validate one pair edit against the model contract and return its
/// canonical storage form. Shared by [`OverlayPreferences::with_pair`] and
/// [`PrefDelta::with_pair`] so both enforce identical invariants.
fn validated_pair(
    dim: DimId,
    a: ValueId,
    b: ValueId,
    forward: f64,
    backward: f64,
) -> Result<(PairKey, PrefPair)> {
    if a == b {
        return Err(CoreError::SelfPreference { dim, value: a });
    }
    check_probability(forward, "Pr(a ≺ b)")?;
    check_probability(backward, "Pr(b ≺ a)")?;
    if forward + backward > 1.0 + 1e-12 {
        return Err(CoreError::PairMassExceedsOne { dim, a, b, total: forward + backward });
    }
    let (key, canonical) = PairKey::new(dim, a, b);
    let stored = if canonical {
        PrefPair { forward, backward }
    } else {
        PrefPair { forward: backward, backward: forward }
    };
    Ok((key, stored))
}

/// A [`PreferenceModel`] layering an explicit, edit-accumulating pair table
/// over an arbitrary base model. See the module docs above.
#[derive(Debug, Clone)]
pub struct OverlayPreferences<M> {
    base: M,
    overlay: HashMap<PairKey, PrefPair>,
}

impl<M: PreferenceModel> OverlayPreferences<M> {
    /// An overlay with no edits: behaves exactly like `base`.
    pub fn new(base: M) -> Self {
        Self { base, overlay: HashMap::new() }
    }

    /// The base model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Number of edited pairs.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Whether no pair has been edited.
    pub fn is_pristine(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Copy-on-write edit: a new overlay where the pair `(a, b)` on `dim`
    /// has `Pr(a ≺ b) = forward` and `Pr(b ≺ a) = backward`, validated
    /// against the model contract. `self` is untouched — readers holding
    /// it keep seeing the old probabilities.
    pub fn with_pair(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<Self>
    where
        M: Clone,
    {
        let (key, stored) = validated_pair(dim, a, b, forward, backward)?;
        let mut next = self.clone();
        next.overlay.insert(key, stored);
        Ok(next)
    }

    /// Iterate over the edited pairs in canonical orientation:
    /// `(dim, lo, hi, pair)` with `pair.forward = Pr(lo ≺ hi)`. Hash
    /// order; sort for stability.
    pub fn overlay_pairs(&self) -> impl Iterator<Item = (DimId, ValueId, ValueId, PrefPair)> + '_ {
        self.overlay.iter().map(|(k, &p)| (DimId(k.dim), ValueId(k.lo), ValueId(k.hi), p))
    }
}

/// A standalone, base-less table of preference-pair edits — the shape of a
/// *per-tenant* delta in a multi-tenant deployment: one population-level
/// base model, one small [`PrefDelta`] per user, layered at request time by
/// [`DeltaOverlay`].
///
/// Unlike [`OverlayPreferences`], a `PrefDelta` owns no base model, so one
/// delta can be layered over whichever epoch's base is current without
/// cloning either. Edits are copy-on-write ([`PrefDelta::with_pair`]), so a
/// registry can hand out `Arc`s of a tenant's delta to concurrent readers
/// and install an updated one without synchronising with them.
#[derive(Debug, Clone, Default)]
pub struct PrefDelta {
    overlay: HashMap<PairKey, PrefPair>,
}

impl PrefDelta {
    /// The empty delta: layering it changes nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edited pairs.
    pub fn len(&self) -> usize {
        self.overlay.len()
    }

    /// Whether no pair has been edited.
    pub fn is_empty(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Copy-on-write edit: a new delta where the pair `(a, b)` on `dim`
    /// has `Pr(a ≺ b) = forward` and `Pr(b ≺ a) = backward`, validated
    /// against the model contract. `self` is untouched.
    pub fn with_pair(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<Self> {
        let (key, stored) = validated_pair(dim, a, b, forward, backward)?;
        let mut next = self.clone();
        next.overlay.insert(key, stored);
        Ok(next)
    }

    /// The delta's probability for `Pr(a ≺ b)` on `dim`, or `None` when
    /// the pair is not edited (callers fall through to their base model).
    pub fn lookup(&self, dim: DimId, a: ValueId, b: ValueId) -> Option<f64> {
        let (key, canonical) = PairKey::new(dim, a, b);
        self.overlay.get(&key).map(|pair| if canonical { pair.forward } else { pair.backward })
    }

    /// The edited pairs in canonical orientation, sorted by
    /// `(dim, lo, hi)` — the deterministic order fingerprints and
    /// snapshots need (the backing map iterates in hash order).
    pub fn pairs_sorted(&self) -> Vec<(DimId, ValueId, ValueId, PrefPair)> {
        let mut pairs: Vec<_> = self
            .overlay
            .iter()
            .map(|(k, &p)| (DimId(k.dim), ValueId(k.lo), ValueId(k.hi), p))
            .collect();
        pairs.sort_unstable_by_key(|&(d, lo, hi, _)| (d.0, lo.0, hi.0));
        pairs
    }

    /// Every `(dim, value)` coin a layered delta can touch: both endpoints
    /// of each edited pair, possibly repeated across pairs. This is the
    /// conservative touched-coin set behind the cross-tenant sharing
    /// guarantee: a component whose coins are disjoint from it keeps its
    /// base-model signature byte for byte.
    pub fn touched_values(&self) -> impl Iterator<Item = (DimId, ValueId)> + '_ {
        self.overlay.keys().flat_map(|k| {
            [(DimId(k.dim), ValueId(k.lo)), (DimId(k.dim), ValueId(k.hi))].into_iter()
        })
    }
}

/// A borrowing [`PreferenceModel`] layering a [`PrefDelta`] over a base
/// model: the delta is consulted first, everything else falls through.
///
/// Both halves are borrowed, so constructing one per request is free; an
/// empty delta short-circuits to the base lookup, which is what makes an
/// empty-overlay tenant bit-identical to the untenanted engine.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOverlay<'a, M: ?Sized> {
    delta: &'a PrefDelta,
    base: &'a M,
}

impl<'a, M: ?Sized> DeltaOverlay<'a, M> {
    /// Layer `delta` over `base`.
    pub fn new(delta: &'a PrefDelta, base: &'a M) -> Self {
        Self { delta, base }
    }
}

impl<M: PreferenceModel + ?Sized> PreferenceModel for DeltaOverlay<'_, M> {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            return 0.0;
        }
        if self.delta.is_empty() {
            return self.base.pr_strict(dim, a, b);
        }
        match self.delta.lookup(dim, a, b) {
            Some(p) => p,
            None => self.base.pr_strict(dim, a, b),
        }
    }
}

impl<M: PreferenceModel> PreferenceModel for OverlayPreferences<M> {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            return 0.0;
        }
        // Pristine overlays are the steady state (every epoch between two
        // preference edits); skip the hash entirely.
        if self.overlay.is_empty() {
            return self.base.pr_strict(dim, a, b);
        }
        let (key, canonical) = PairKey::new(dim, a, b);
        match self.overlay.get(&key) {
            Some(pair) => {
                if canonical {
                    pair.forward
                } else {
                    pair.backward
                }
            }
            None => self.base.pr_strict(dim, a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::SeededPreferences;

    #[test]
    fn pristine_overlay_is_transparent() {
        let base = SeededPreferences::complementary(3);
        let o = OverlayPreferences::new(base);
        assert!(o.is_pristine());
        for (a, b) in [(0, 1), (4, 2), (9, 9)] {
            assert_eq!(
                o.pr_strict(DimId(0), ValueId(a), ValueId(b)),
                base.pr_strict(DimId(0), ValueId(a), ValueId(b)),
            );
        }
    }

    #[test]
    fn edits_are_copy_on_write_and_orientation_aware() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        let e = o.with_pair(DimId(1), ValueId(5), ValueId(2), 0.7, 0.1).unwrap();
        // Old overlay unchanged.
        assert!(o.is_pristine());
        assert_eq!(e.overlay_len(), 1);
        assert!((e.pr_strict(DimId(1), ValueId(5), ValueId(2)) - 0.7).abs() < 1e-15);
        assert!((e.pr_strict(DimId(1), ValueId(2), ValueId(5)) - 0.1).abs() < 1e-15);
        // Other pairs and dimensions still fall through to the base.
        assert_eq!(
            e.pr_strict(DimId(0), ValueId(5), ValueId(2)),
            o.pr_strict(DimId(0), ValueId(5), ValueId(2)),
        );
    }

    #[test]
    fn edits_validate_the_model_contract() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        assert!(matches!(
            o.with_pair(DimId(0), ValueId(1), ValueId(1), 0.5, 0.5),
            Err(CoreError::SelfPreference { .. })
        ));
        assert!(matches!(
            o.with_pair(DimId(0), ValueId(0), ValueId(1), 0.8, 0.8),
            Err(CoreError::PairMassExceedsOne { .. })
        ));
        assert!(o.with_pair(DimId(0), ValueId(0), ValueId(1), f64::NAN, 0.5).is_err());
    }

    #[test]
    fn delta_overlay_layers_and_falls_through() {
        let base = SeededPreferences::complementary(3);
        let delta = PrefDelta::new().with_pair(DimId(1), ValueId(5), ValueId(2), 0.7, 0.1).unwrap();
        let layered = DeltaOverlay::new(&delta, &base);
        assert!((layered.pr_strict(DimId(1), ValueId(5), ValueId(2)) - 0.7).abs() < 1e-15);
        assert!((layered.pr_strict(DimId(1), ValueId(2), ValueId(5)) - 0.1).abs() < 1e-15);
        assert_eq!(layered.pr_strict(DimId(1), ValueId(5), ValueId(5)), 0.0);
        // Untouched pairs and dimensions fall through to the base.
        assert_eq!(
            layered.pr_strict(DimId(0), ValueId(5), ValueId(2)),
            base.pr_strict(DimId(0), ValueId(5), ValueId(2)),
        );
        // An empty delta is fully transparent.
        let empty = PrefDelta::new();
        let transparent = DeltaOverlay::new(&empty, &base);
        for (a, b) in [(0, 1), (4, 2), (9, 9)] {
            assert_eq!(
                transparent.pr_strict(DimId(0), ValueId(a), ValueId(b)).to_bits(),
                base.pr_strict(DimId(0), ValueId(a), ValueId(b)).to_bits(),
            );
        }
    }

    #[test]
    fn delta_validates_sorts_and_reports_touched_values() {
        let delta = PrefDelta::new();
        assert!(matches!(
            delta.with_pair(DimId(0), ValueId(1), ValueId(1), 0.5, 0.5),
            Err(CoreError::SelfPreference { .. })
        ));
        assert!(matches!(
            delta.with_pair(DimId(0), ValueId(0), ValueId(1), 0.8, 0.8),
            Err(CoreError::PairMassExceedsOne { .. })
        ));
        assert!(delta.with_pair(DimId(0), ValueId(0), ValueId(1), f64::NAN, 0.5).is_err());

        let delta = delta
            .with_pair(DimId(1), ValueId(7), ValueId(3), 0.6, 0.2)
            .unwrap()
            .with_pair(DimId(0), ValueId(2), ValueId(9), 0.1, 0.4)
            .unwrap();
        assert_eq!(delta.len(), 2);
        // Canonical orientation (lo before hi), sorted by (dim, lo, hi).
        let pairs = delta.pairs_sorted();
        assert_eq!(pairs[0].0, DimId(0));
        assert_eq!((pairs[0].1, pairs[0].2), (ValueId(2), ValueId(9)));
        assert_eq!(pairs[1].0, DimId(1));
        assert_eq!((pairs[1].1, pairs[1].2), (ValueId(3), ValueId(7)));
        assert!((pairs[1].3.forward - 0.2).abs() < 1e-15, "stored in lo→hi orientation");
        let mut touched: Vec<_> = delta.touched_values().collect();
        touched.sort_unstable_by_key(|&(d, v)| (d.0, v.0));
        assert_eq!(
            touched,
            vec![
                (DimId(0), ValueId(2)),
                (DimId(0), ValueId(9)),
                (DimId(1), ValueId(3)),
                (DimId(1), ValueId(7)),
            ]
        );
    }

    #[test]
    fn latest_edit_wins() {
        let o = OverlayPreferences::new(SeededPreferences::complementary(3));
        let e1 = o.with_pair(DimId(0), ValueId(0), ValueId(1), 0.1, 0.2).unwrap();
        let e2 = e1.with_pair(DimId(0), ValueId(1), ValueId(0), 0.6, 0.3).unwrap();
        assert_eq!(e2.overlay_len(), 1);
        assert!((e2.pr_strict(DimId(0), ValueId(1), ValueId(0)) - 0.6).abs() < 1e-15);
        assert!((e1.pr_strict(DimId(0), ValueId(0), ValueId(1)) - 0.1).abs() < 1e-15);
    }
}
