//! Degenerate certain preferences induced by value-code order.

use crate::types::{DimId, ValueId};

use super::PreferenceModel;

/// A certain (0/1) preference model: on every dimension, values are totally
/// ordered by their numeric code.
///
/// With `ascending = true` (the default), smaller codes are preferred — the
/// convention of classical skyline papers where "smaller is better". Under
/// this model every skyline probability is exactly 0 or 1 and must agree
/// with a deterministic skyline computation; the query crate uses this as a
/// consistency oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicOrder {
    ascending: bool,
}

impl DeterministicOrder {
    /// Smaller value codes are preferred.
    pub fn ascending() -> Self {
        Self { ascending: true }
    }

    /// Larger value codes are preferred.
    pub fn descending() -> Self {
        Self { ascending: false }
    }

    /// Whether smaller codes win.
    pub fn is_ascending(&self) -> bool {
        self.ascending
    }
}

impl Default for DeterministicOrder {
    fn default() -> Self {
        Self::ascending()
    }
}

impl PreferenceModel for DeterministicOrder {
    fn pr_strict(&self, _dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if a == b {
            0.0
        } else if (a.0 < b.0) == self.ascending {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::validate_model_on_pairs;

    #[test]
    fn ascending_prefers_smaller() {
        let m = DeterministicOrder::ascending();
        assert_eq!(m.pr_strict(DimId(0), ValueId(1), ValueId(2)), 1.0);
        assert_eq!(m.pr_strict(DimId(0), ValueId(2), ValueId(1)), 0.0);
        assert_eq!(m.pr_strict(DimId(0), ValueId(2), ValueId(2)), 0.0);
        assert_eq!(m.pr_weak(DimId(0), ValueId(2), ValueId(2)), 1.0);
    }

    #[test]
    fn descending_prefers_larger() {
        let m = DeterministicOrder::descending();
        assert_eq!(m.pr_strict(DimId(0), ValueId(1), ValueId(2)), 0.0);
        assert_eq!(m.pr_strict(DimId(0), ValueId(2), ValueId(1)), 1.0);
    }

    #[test]
    fn satisfies_contract() {
        let pairs: Vec<_> = (0..5u32)
            .flat_map(|a| (0..5u32).map(move |b| (DimId(0), ValueId(a), ValueId(b))))
            .collect();
        validate_model_on_pairs(&DeterministicOrder::ascending(), &pairs).unwrap();
        validate_model_on_pairs(&DeterministicOrder::descending(), &pairs).unwrap();
    }
}
