//! Eliciting uncertain preferences from pairwise votes.
//!
//! The paper grounds its model in probabilistic voting ("this probabilistic
//! preference model has already been widely used in voting theory as
//! fuzzy/probability voting schema and probabilistic majority rules"):
//! `Pr(a ≺ b)` is the fraction of the population preferring `a`. This
//! module turns raw ballots into a [`TablePreferences`]:
//!
//! * [`VoteTally`] / [`ElicitationBuilder`] — direct frequency estimation
//!   with Laplace smoothing; abstentions become incomparability mass.
//! * [`BradleyTerry`] — fits per-value *strengths* from (possibly sparse)
//!   tallies with the classic minorisation–maximisation updates, then
//!   predicts `Pr(a ≺ b) = w_a / (w_a + w_b)` for **every** pair — filling
//!   in pairs the population never compared directly, consistently with
//!   the comparisons it did make.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::types::{DimId, ValueId};

use super::table::TablePreferences;
use super::PrefPair;

/// Ballot counts for one value pair on one dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteTally {
    /// Ballots preferring the first value.
    pub wins_a: u64,
    /// Ballots preferring the second value.
    pub wins_b: u64,
    /// Ballots declaring the pair incomparable (abstentions).
    pub abstain: u64,
}

impl VoteTally {
    /// Total ballots.
    pub fn total(&self) -> u64 {
        self.wins_a + self.wins_b + self.abstain
    }

    /// Convert to a [`PrefPair`] with additive (Laplace) smoothing
    /// `alpha ≥ 0` per outcome.
    ///
    /// With `alpha = 0` and no ballots this yields the fully incomparable
    /// pair `(0, 0)`; with `alpha > 0` it yields the uninformed prior
    /// `(⅓, ⅓)`.
    pub fn to_pair(&self, alpha: f64) -> Result<PrefPair> {
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(CoreError::InvalidProbability { value: alpha, context: "smoothing" });
        }
        let denom = self.total() as f64 + 3.0 * alpha;
        if denom == 0.0 {
            return PrefPair::new(0.0, 0.0);
        }
        PrefPair::new((self.wins_a as f64 + alpha) / denom, (self.wins_b as f64 + alpha) / denom)
    }
}

/// Accumulates ballots and materialises a smoothed preference table.
#[derive(Debug, Clone)]
pub struct ElicitationBuilder {
    votes: HashMap<(u32, u32, u32), VoteTally>,
    alpha: f64,
}

/// One ballot outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ballot {
    /// The voter prefers the first value.
    PreferFirst,
    /// The voter prefers the second value.
    PreferSecond,
    /// The voter finds the pair incomparable.
    Incomparable,
}

impl ElicitationBuilder {
    /// Builder with Laplace smoothing `alpha` (1.0 is the classic choice).
    pub fn new(alpha: f64) -> Self {
        Self { votes: HashMap::new(), alpha }
    }

    fn key(dim: DimId, a: ValueId, b: ValueId) -> ((u32, u32, u32), bool) {
        if a.0 <= b.0 {
            ((dim.0, a.0, b.0), true)
        } else {
            ((dim.0, b.0, a.0), false)
        }
    }

    /// Record one ballot on the pair `(a, b)`.
    pub fn record(&mut self, dim: DimId, a: ValueId, b: ValueId, ballot: Ballot) -> Result<()> {
        if a == b {
            return Err(CoreError::SelfPreference { dim, value: a });
        }
        let (key, canonical) = Self::key(dim, a, b);
        let tally = self.votes.entry(key).or_default();
        match (ballot, canonical) {
            (Ballot::PreferFirst, true) | (Ballot::PreferSecond, false) => tally.wins_a += 1,
            (Ballot::PreferSecond, true) | (Ballot::PreferFirst, false) => tally.wins_b += 1,
            (Ballot::Incomparable, _) => tally.abstain += 1,
        }
        Ok(())
    }

    /// Record a whole tally at once (in the orientation of `(a, b)`).
    pub fn record_tally(
        &mut self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        tally: VoteTally,
    ) -> Result<()> {
        if a == b {
            return Err(CoreError::SelfPreference { dim, value: a });
        }
        let (key, canonical) = Self::key(dim, a, b);
        let entry = self.votes.entry(key).or_default();
        let (wa, wb) =
            if canonical { (tally.wins_a, tally.wins_b) } else { (tally.wins_b, tally.wins_a) };
        entry.wins_a += wa;
        entry.wins_b += wb;
        entry.abstain += tally.abstain;
        Ok(())
    }

    /// Ballots recorded for a pair, in the orientation of `(a, b)`.
    pub fn tally(&self, dim: DimId, a: ValueId, b: ValueId) -> VoteTally {
        let (key, canonical) = Self::key(dim, a, b);
        let t = self.votes.get(&key).copied().unwrap_or_default();
        if canonical {
            t
        } else {
            VoteTally { wins_a: t.wins_b, wins_b: t.wins_a, abstain: t.abstain }
        }
    }

    /// Materialise the smoothed preference table.
    pub fn build(&self) -> Result<TablePreferences> {
        let mut prefs = TablePreferences::new();
        for (&(dim, lo, hi), tally) in &self.votes {
            let pair = tally.to_pair(self.alpha)?;
            prefs.set(DimId(dim), ValueId(lo), ValueId(hi), pair.forward, pair.backward)?;
        }
        Ok(prefs)
    }
}

/// Bradley–Terry strength model for one dimension.
///
/// Fits strengths `w_v > 0` maximising the likelihood of the observed
/// pairwise wins under `Pr(a beats b) = w_a / (w_a + w_b)`, via the MM
/// update of Hunter (2004). Abstentions are ignored by the fit (they carry
/// no ordinal information) but can be re-injected as a global
/// incomparability rate.
#[derive(Debug, Clone)]
pub struct BradleyTerry {
    /// Fitted strengths, normalised to mean 1.
    strengths: HashMap<u32, f64>,
    /// Fraction of ballots that abstained, re-applied as incomparability.
    abstain_rate: f64,
}

impl BradleyTerry {
    /// Fit strengths from tallies `((a, b), tally)` on one dimension.
    ///
    /// `iterations` of MM (50 is plenty for small value sets); a small
    /// smoothing pseudo-win keeps never-winning values at positive
    /// strength.
    pub fn fit(tallies: &[((ValueId, ValueId), VoteTally)], iterations: usize) -> Result<Self> {
        let mut values: Vec<u32> = Vec::new();
        for ((a, b), _) in tallies {
            if a == b {
                return Err(CoreError::SelfPreference { dim: DimId(0), value: *a });
            }
            values.push(a.0);
            values.push(b.0);
        }
        values.sort_unstable();
        values.dedup();

        // Pairwise win/match counts with a pseudo-win of 0.1 per direction
        // (regularisation; keeps the MLE finite on degenerate data).
        const PSEUDO: f64 = 0.1;
        let mut wins: HashMap<u32, f64> = values.iter().map(|&v| (v, 0.0)).collect();
        let mut matches: HashMap<(u32, u32), f64> = HashMap::new();
        let mut total_ballots = 0u64;
        let mut total_abstain = 0u64;
        for ((a, b), t) in tallies {
            *wins.get_mut(&a.0).expect("interned") += t.wins_a as f64 + PSEUDO;
            *wins.get_mut(&b.0).expect("interned") += t.wins_b as f64 + PSEUDO;
            let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
            *matches.entry(key).or_insert(0.0) += (t.wins_a + t.wins_b) as f64 + 2.0 * PSEUDO;
            total_ballots += t.total();
            total_abstain += t.abstain;
        }

        let mut w: HashMap<u32, f64> = values.iter().map(|&v| (v, 1.0)).collect();
        for _ in 0..iterations {
            let mut next = HashMap::with_capacity(w.len());
            for &v in &values {
                let mut denom = 0.0;
                for (&(x, y), &m) in &matches {
                    if x == v {
                        denom += m / (w[&v] + w[&y]);
                    } else if y == v {
                        denom += m / (w[&v] + w[&x]);
                    }
                }
                let nw = if denom > 0.0 { wins[&v] / denom } else { 1.0 };
                next.insert(v, nw.max(1e-12));
            }
            // Normalise to geometric mean 1 for stability.
            let log_mean: f64 =
                next.values().map(|x| x.ln()).sum::<f64>() / next.len().max(1) as f64;
            let scale = (-log_mean).exp();
            for x in next.values_mut() {
                *x *= scale;
            }
            w = next;
        }

        let abstain_rate =
            if total_ballots > 0 { total_abstain as f64 / total_ballots as f64 } else { 0.0 };
        Ok(Self { strengths: w, abstain_rate })
    }

    /// Fitted strength of a value (`None` if unseen).
    pub fn strength(&self, v: ValueId) -> Option<f64> {
        self.strengths.get(&v.0).copied()
    }

    /// The abstention rate re-applied as incomparability mass.
    pub fn abstain_rate(&self) -> f64 {
        self.abstain_rate
    }

    /// Predicted pair: `Pr(a ≺ b) = (1 − r) · w_a / (w_a + w_b)` where `r`
    /// is the abstention rate. Unseen values are treated as strength 1.
    pub fn predict(&self, a: ValueId, b: ValueId) -> PrefPair {
        if a == b {
            return PrefPair { forward: 0.0, backward: 0.0 };
        }
        let wa = self.strength(a).unwrap_or(1.0);
        let wb = self.strength(b).unwrap_or(1.0);
        let comparable = 1.0 - self.abstain_rate;
        PrefPair { forward: comparable * wa / (wa + wb), backward: comparable * wb / (wa + wb) }
    }

    /// Materialise predictions for every pair of the given values on
    /// `dim`.
    pub fn to_preferences(&self, dim: DimId, values: &[ValueId]) -> Result<TablePreferences> {
        let mut prefs = TablePreferences::new();
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i + 1..] {
                let p = self.predict(a, b);
                prefs.set(dim, a, b, p.forward, p.backward)?;
            }
        }
        Ok(prefs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::PreferenceModel;

    #[test]
    fn tallies_smooth_to_valid_pairs() {
        let t = VoteTally { wins_a: 7, wins_b: 2, abstain: 1 };
        let p = t.to_pair(0.0).unwrap();
        assert!((p.forward - 0.7).abs() < 1e-12);
        assert!((p.incomparable() - 0.1).abs() < 1e-12);
        let smoothed = t.to_pair(1.0).unwrap();
        assert!(smoothed.forward < p.forward, "smoothing pulls toward uniform");
        assert!(t.to_pair(-1.0).is_err());
        assert_eq!(VoteTally::default().to_pair(0.0).unwrap().forward, 0.0);
    }

    #[test]
    fn builder_orientation_is_consistent() {
        let mut b = ElicitationBuilder::new(0.0);
        let (d, x, y) = (DimId(0), ValueId(5), ValueId(2));
        b.record(d, x, y, Ballot::PreferFirst).unwrap();
        b.record(d, y, x, Ballot::PreferSecond).unwrap(); // same meaning
        b.record(d, x, y, Ballot::Incomparable).unwrap();
        let t = b.tally(d, x, y);
        assert_eq!(t, VoteTally { wins_a: 2, wins_b: 0, abstain: 1 });
        let prefs = b.build().unwrap();
        assert!((prefs.pr_strict(d, x, y) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(prefs.pr_strict(d, y, x), 0.0);
    }

    #[test]
    fn self_ballots_rejected() {
        let mut b = ElicitationBuilder::new(1.0);
        assert!(b.record(DimId(0), ValueId(1), ValueId(1), Ballot::PreferFirst).is_err());
        assert!(b.record_tally(DimId(0), ValueId(1), ValueId(1), VoteTally::default()).is_err());
    }

    #[test]
    fn record_tally_merges() {
        let mut b = ElicitationBuilder::new(0.5);
        b.record_tally(
            DimId(1),
            ValueId(0),
            ValueId(1),
            VoteTally { wins_a: 3, wins_b: 1, abstain: 0 },
        )
        .unwrap();
        b.record_tally(
            DimId(1),
            ValueId(1),
            ValueId(0),
            VoteTally { wins_a: 1, wins_b: 2, abstain: 2 },
        )
        .unwrap();
        // Combined in (0,1) orientation: wins_a = 3 + 2, wins_b = 1 + 1.
        let t = b.tally(DimId(1), ValueId(0), ValueId(1));
        assert_eq!(t, VoteTally { wins_a: 5, wins_b: 2, abstain: 2 });
    }

    #[test]
    fn bradley_terry_recovers_a_clear_order() {
        // v0 beats v1 beats v2, transitively consistent ballots.
        let tallies = vec![
            ((ValueId(0), ValueId(1)), VoteTally { wins_a: 80, wins_b: 20, abstain: 0 }),
            ((ValueId(1), ValueId(2)), VoteTally { wins_a: 80, wins_b: 20, abstain: 0 }),
        ];
        let bt = BradleyTerry::fit(&tallies, 100).unwrap();
        let w0 = bt.strength(ValueId(0)).unwrap();
        let w1 = bt.strength(ValueId(1)).unwrap();
        let w2 = bt.strength(ValueId(2)).unwrap();
        assert!(w0 > w1 && w1 > w2, "strengths {w0} > {w1} > {w2}");
        // The *unobserved* pair (0, 2) gets a confident transitive
        // prediction.
        let p = bt.predict(ValueId(0), ValueId(2));
        assert!(p.forward > 0.85, "transitive fill-in: {}", p.forward);
        // Observed pairs are matched approximately.
        let p01 = bt.predict(ValueId(0), ValueId(1));
        assert!((p01.forward - 0.8).abs() < 0.08, "{}", p01.forward);
    }

    #[test]
    fn bradley_terry_abstentions_become_incomparability() {
        let tallies =
            vec![((ValueId(0), ValueId(1)), VoteTally { wins_a: 30, wins_b: 30, abstain: 40 })];
        let bt = BradleyTerry::fit(&tallies, 50).unwrap();
        assert!((bt.abstain_rate() - 0.4).abs() < 1e-12);
        let p = bt.predict(ValueId(0), ValueId(1));
        assert!((p.incomparable() - 0.4).abs() < 1e-9);
        assert!((p.forward - 0.3).abs() < 0.02);
    }

    #[test]
    fn bradley_terry_materialises_a_valid_model() {
        let tallies = vec![
            ((ValueId(0), ValueId(1)), VoteTally { wins_a: 10, wins_b: 5, abstain: 5 }),
            ((ValueId(1), ValueId(2)), VoteTally { wins_a: 9, wins_b: 3, abstain: 0 }),
            ((ValueId(0), ValueId(2)), VoteTally { wins_a: 12, wins_b: 1, abstain: 2 }),
        ];
        let bt = BradleyTerry::fit(&tallies, 80).unwrap();
        let values = [ValueId(0), ValueId(1), ValueId(2)];
        let prefs = bt.to_preferences(DimId(3), &values).unwrap();
        let checks: Vec<_> =
            values.iter().flat_map(|&a| values.iter().map(move |&b| (DimId(3), a, b))).collect();
        crate::preference::validate_model_on_pairs(&prefs, &checks).unwrap();
        // Order respected end to end.
        assert!(prefs.pr_strict(DimId(3), ValueId(0), ValueId(2)) > 0.5);
    }

    #[test]
    fn bradley_terry_rejects_self_pairs_and_handles_empty() {
        assert!(BradleyTerry::fit(&[((ValueId(1), ValueId(1)), VoteTally::default())], 10).is_err());
        let bt = BradleyTerry::fit(&[], 10).unwrap();
        assert_eq!(bt.abstain_rate(), 0.0);
        let p = bt.predict(ValueId(0), ValueId(1));
        assert!((p.forward - 0.5).abs() < 1e-12, "unseen values are even");
    }
}
