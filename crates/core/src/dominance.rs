//! Dominance between objects under uncertain preferences.
//!
//! `Qi` dominates `O` (written `Qi ≺ O`, event `e_i`) iff `Qi` is weakly
//! preferred on every dimension and strictly preferred on at least one.
//! Because values on a dimension are either identical (equal with
//! certainty) or distinct (related by an uncertain strict preference), and
//! the table holds no duplicate rows, Equation 2 of the paper gives
//!
//! ```text
//! Pr(e_i) = Π_{j : Qi.j ≠ O.j} Pr(Qi.j ≺ O.j)
//! ```

use crate::preference::PreferenceModel;
use crate::table::Table;
use crate::types::{DimId, ObjectId};
use crate::world::World;

/// The dimensions on which two objects carry different values.
pub fn differing_dims(table: &Table, a: ObjectId, b: ObjectId) -> Vec<DimId> {
    (0..table.dimensionality())
        .map(DimId::from)
        .filter(|&j| table.value(a, j) != table.value(b, j))
        .collect()
}

/// `Pr(q ≺ o)`: the probability that `q` dominates `o` (Equation 2).
///
/// Returns `0` when `q` and `o` are the same row or identical rows — an
/// object never dominates itself.
pub fn pr_dominates<M: PreferenceModel>(table: &Table, prefs: &M, q: ObjectId, o: ObjectId) -> f64 {
    if q == o {
        return 0.0;
    }
    let mut prod = 1.0;
    let mut any_diff = false;
    for j in (0..table.dimensionality()).map(DimId::from) {
        let (qv, ov) = (table.value(q, j), table.value(o, j));
        if qv != ov {
            any_diff = true;
            prod *= prefs.pr_strict(j, qv, ov);
            if prod == 0.0 {
                return 0.0;
            }
        }
    }
    if any_diff {
        prod
    } else {
        0.0
    }
}

/// Whether `q` dominates `o` in a *realized* world of preferences.
///
/// In a realized world each relevant value pair has resolved to one of
/// "forward", "backward" or "incomparable"; `q ≺ o` iff every differing
/// dimension resolved in `q`'s favour (and at least one dimension differs).
pub fn dominates_in_world(table: &Table, world: &World, q: ObjectId, o: ObjectId) -> bool {
    if q == o {
        return false;
    }
    let mut any_diff = false;
    for j in (0..table.dimensionality()).map(DimId::from) {
        let (qv, ov) = (table.value(q, j), table.value(o, j));
        if qv != ov {
            any_diff = true;
            if !world.prefers(j, qv, ov) {
                return false;
            }
        }
    }
    any_diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{PrefPair, TablePreferences};
    use crate::types::ValueId;
    use crate::world::{PairId, Relation, World};

    /// The Observation fixture of Section 1: `P1=(α,s)`, `P2=(α,t)`,
    /// `P3=(β,t)` with all preferences one half.
    fn observation() -> (Table, TablePreferences) {
        // codes: dim0: α=0, β=1; dim1: s=0, t=1.
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
        let p = TablePreferences::with_default(PrefPair::half());
        (t, p)
    }

    #[test]
    fn observation_dominance_probabilities() {
        let (t, p) = observation();
        // Pr(P2 ≺ P1) = 1/2 (only dim1 differs), Pr(P3 ≺ P1) = 1/4.
        assert_eq!(pr_dominates(&t, &p, ObjectId(1), ObjectId(0)), 0.5);
        assert_eq!(pr_dominates(&t, &p, ObjectId(2), ObjectId(0)), 0.25);
        // Symmetric direction is also 1/2 and 1/4 here (all prefs are ½).
        assert_eq!(pr_dominates(&t, &p, ObjectId(0), ObjectId(1)), 0.5);
    }

    #[test]
    fn self_dominance_is_zero() {
        let (t, p) = observation();
        assert_eq!(pr_dominates(&t, &p, ObjectId(0), ObjectId(0)), 0.0);
    }

    #[test]
    fn differing_dims_reports_mismatches() {
        let (t, _) = observation();
        assert_eq!(differing_dims(&t, ObjectId(1), ObjectId(0)), vec![DimId(1)]);
        assert_eq!(differing_dims(&t, ObjectId(2), ObjectId(0)), vec![DimId(0), DimId(1)]);
        assert!(differing_dims(&t, ObjectId(0), ObjectId(0)).is_empty());
    }

    #[test]
    fn zero_probability_short_circuits() {
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1]]).unwrap();
        let mut p = TablePreferences::new(); // default incomparable (0, 0)
        p.set(DimId(0), ValueId(1), ValueId(0), 1.0, 0.0).unwrap();
        // dim1 pair missing -> strict probability 0 -> product 0.
        assert_eq!(pr_dominates(&t, &p, ObjectId(1), ObjectId(0)), 0.0);
    }

    #[test]
    fn realized_world_dominance() {
        let (t, _) = observation();
        let mut w = World::new();
        // t ≺ s on dim1 (codes: s=0, t=1 -> pair (0,1), hi wins).
        w.set(PairId::new(DimId(1), ValueId(0), ValueId(1)), Relation::HiWins);
        // α ≺ β on dim0.
        w.set(PairId::new(DimId(0), ValueId(0), ValueId(1)), Relation::LoWins);
        // P2=(α,t) dominates P1=(α,s): only dim1 differs and t won.
        assert!(dominates_in_world(&t, &w, ObjectId(1), ObjectId(0)));
        // P3=(β,t) needs β≺α too, but α won dim0.
        assert!(!dominates_in_world(&t, &w, ObjectId(2), ObjectId(0)));
        // Never dominates itself.
        assert!(!dominates_in_world(&t, &w, ObjectId(0), ObjectId(0)));
    }

    #[test]
    fn incomparable_world_blocks_dominance() {
        let (t, _) = observation();
        let mut w = World::new();
        w.set(PairId::new(DimId(1), ValueId(0), ValueId(1)), Relation::Incomparable);
        assert!(!dominates_in_world(&t, &w, ObjectId(1), ObjectId(0)));
    }
}
