//! Bit-parallel possible worlds: 64 worlds per machine word.
//!
//! The Monte-Carlo estimators sample a possible world by flipping one
//! Bernoulli coin per distinct `(dimension, foreign value)` pair and asking
//! whether any attacker has all of its coins winning. Worlds are mutually
//! independent, so 64 of them can share a machine word: **lane** `j` of a
//! `u64` holds world `j` of the current *block*. A coin then draws a single
//! `u64` *mask* (bit `j` set iff the coin wins in world `j`), an attacker
//! dominates in exactly the lanes where the AND of its coin masks is set,
//! and the target survives in the complement of the OR over attackers.
//!
//! ## Bit-sliced Bernoulli masks
//!
//! A coin with win probability `p` wins in lane `j` iff a uniform 64-bit
//! integer `U_j < t` where `t = round(p · 2⁶⁴)` (see [`threshold`]). The 64
//! comparisons are evaluated *bit-sliced*: the RNG emits one word per bit
//! *plane* (bit `j` of plane `b` is bit `b` of `U_j`) and the comparison
//! walks planes MSB-first, maintaining `lt` (lanes decided `U < t`) and
//! `eq` (lanes still equal to `t`'s prefix):
//!
//! * `t`'s bit is 1 → `lt |= eq & !r; eq &= r;`
//! * `t`'s bit is 0 → `eq &= !r;`
//!
//! stopping as soon as `eq == 0` or at `t.trailing_zeros()` (every bit of
//! `t` below its lowest set bit is 0, so still-equal lanes can no longer
//! drop below `t`). The expected plane count is ~2 + log₂ plus dyadic
//! shortcuts — `p = 1/2` costs exactly **one** word for 64 worlds, versus
//! 64 `f64` draws in the scalar sampler.
//!
//! ## Counter-based seeding
//!
//! All randomness is a pure function of `(seed, block, stream, plane)`
//! through SplitMix64-style mixing ([`BlockKey`]): the mask of coin `k` in
//! block `b` does not depend on *when* (or whether) other masks are drawn.
//! Estimates are therefore bit-reproducible regardless of thread count,
//! chunk order, or lazy vs eager mask materialisation.
//!
//! ## Antithetic lanes
//!
//! The antithetic estimator mirrors a uniform `u → 1 − u`; on integers the
//! mirrored uniform is the bitwise complement `!U`, and the mirrored win
//! `!U < t` is `U ≥ 2⁶⁴ − t`, i.e. the complement of a plain comparison
//! against `t.wrapping_neg()`. [`bernoulli_mask_pair`] evaluates both
//! comparisons from one shared plane stream (`t` and `t.wrapping_neg()`
//! even share `trailing_zeros`), so a pair of mirrored worlds costs the
//! same planes as one. At `p = 1/2` the two masks are exact complements —
//! the perfect-mirror case of the scalar implementation is preserved
//! bit-for-bit in spirit and in statistics.
//!
//! ## Multi-word lanes
//!
//! One `u64` leaves most of a vector register idle. The wide kernel
//! ([`survivors_wide`], [`WideScratch`]) processes `W` words — a
//! *superblock* of `64·W` worlds — per step, written as straight-line
//! `[u64; W]` array ops the compiler auto-vectorises on stable Rust; a
//! runtime-detected AVX2 path ([`survivors_wide4`]) recompiles the same
//! generic code with 256-bit codegen. Word `w` of superblock `sb` reuses
//! the [`BlockKey`] of narrow block `sb·W + w`, so every mask — and hence
//! every estimate — is **bit-identical at every width**; only throughput
//! and the lazy-materialisation telemetry change. The comparator runs all
//! `W` words in lock-step: words whose `eq` has already reached zero keep
//! absorbing plane updates as no-ops (their `lt` is frozen), which keeps
//! the inner loop branch-free across words without perturbing any bit.

use crate::coins::CoinView;

/// Default lane width of the wide kernel: 4 words = 256 worlds per step,
/// matching one AVX2 register.
pub const DEFAULT_LANE_WORDS: usize = 4;

/// Clamp a requested lane width to the supported set `{1, 2, 4, 8}`,
/// rounding down, so option plumbing can accept any value.
#[inline]
pub fn normalize_lane_words(w: usize) -> usize {
    match w {
        0 | 1 => 1,
        2 | 3 => 2,
        4..=7 => 4,
        _ => 8,
    }
}

/// Golden-ratio increment of the SplitMix64 stream.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective avalanche mix of one word.
#[inline(always)]
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sentinel threshold for a certain coin (`p ≥ 1`): mask `!0`, no draws.
pub const CERTAIN: u64 = u64::MAX;

/// Win threshold of a coin: wins iff a uniform `u64` is `< t`, so
/// `P(win) = t / 2⁶⁴` exactly.
///
/// `p ≤ 0` maps to 0 (never wins, no randomness consumed) and `p ≥ 1` to
/// the [`CERTAIN`] sentinel (always wins, no randomness consumed). A `p`
/// within `2⁻⁶⁴` of 0 or 1 rounds into those exact cases — far below every
/// statistical tolerance in the workspace, and a *better* rounding than
/// the scalar `f64` comparison performs.
#[inline]
pub fn threshold(p: f64) -> u64 {
    // NaN takes this branch too: an undefined preference never wins.
    if p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return CERTAIN;
    }
    // Saturating float→int cast: p close enough to 1 lands on u64::MAX,
    // which is exactly the CERTAIN sentinel.
    (p * 18_446_744_073_709_551_616.0) as u64
}

/// The deterministic randomness root of one 64-world block: mixes
/// `(seed, block)` once, then hands out independent per-stream plane
/// generators (streams are coins, plus reserved auxiliary streams).
#[derive(Debug, Clone, Copy)]
pub struct BlockKey {
    base: u64,
}

/// First stream id reserved for non-coin randomness (coin ids are `u32`,
/// so streams `< 2³²` belong to coins).
pub const AUX_STREAM: u64 = 1 << 32;

impl BlockKey {
    /// Key of `block` under `seed`.
    #[inline]
    pub fn new(seed: u64, block: u64) -> Self {
        Self { base: mix(seed ^ mix(block.wrapping_mul(GOLDEN) ^ 0x243f_6a88_85a3_08d3)) }
    }

    /// The plane generator of one stream within this block.
    #[inline(always)]
    pub fn stream(&self, stream: u64) -> PlaneRng {
        PlaneRng { state: mix(self.base ^ stream.wrapping_mul(0xd1b5_4a32_d192_ed03)) }
    }
}

/// A SplitMix64 stream emitting one 64-lane bit plane per call. Fully
/// determined by its [`BlockKey`] and stream id.
#[derive(Debug, Clone)]
pub struct PlaneRng {
    state: u64,
}

impl PlaneRng {
    /// Next bit plane (also usable as a plain uniform `u64`).
    #[inline(always)]
    pub fn next_word(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

/// 64 independent Bernoulli draws at threshold `t` — one mask word.
///
/// Returns `(mask, planes_consumed)`. `t` must be a regular threshold
/// (neither 0 nor [`CERTAIN`]); the degenerate cases never touch the RNG
/// and are handled by the callers.
#[inline]
pub fn bernoulli_mask(rng: &mut PlaneRng, t: u64) -> (u64, u32) {
    debug_assert!(t != 0 && t != CERTAIN);
    let stop = t.trailing_zeros();
    let mut lt = 0u64;
    let mut eq = u64::MAX;
    let mut planes = 0u32;
    let mut plane = 63u32;
    loop {
        let r = rng.next_word();
        planes += 1;
        if (t >> plane) & 1 == 1 {
            lt |= eq & !r;
            eq &= r;
        } else {
            eq &= !r;
        }
        if eq == 0 || plane == stop {
            // Below the lowest set bit of t every remaining bit of t is 0:
            // still-equal lanes satisfy U ≥ t and stay losses.
            return (lt, planes);
        }
        plane -= 1;
    }
}

/// The plain and mirrored masks of an antithetic pair, from one shared
/// plane stream: `(plain, mirrored, planes_consumed)`.
///
/// Lane `j` of `plain` is `U_j < t`; lane `j` of `mirrored` is
/// `!U_j < t`, i.e. `U_j ≥ t.wrapping_neg()`. Both events have probability
/// `t / 2⁶⁴`, and at `t = 2⁶³` (`p = 1/2`) the masks are exact
/// complements.
#[inline]
pub fn bernoulli_mask_pair(rng: &mut PlaneRng, t: u64) -> (u64, u64, u32) {
    debug_assert!(t != 0 && t != CERTAIN);
    let tm = t.wrapping_neg();
    // −t = t with its trailing zeros preserved, so one stop serves both.
    let stop = t.trailing_zeros();
    let (mut lt_p, mut eq_p) = (0u64, u64::MAX);
    let (mut lt_m, mut eq_m) = (0u64, u64::MAX);
    let mut planes = 0u32;
    let mut plane = 63u32;
    loop {
        let r = rng.next_word();
        planes += 1;
        if (t >> plane) & 1 == 1 {
            lt_p |= eq_p & !r;
            eq_p &= r;
        } else {
            eq_p &= !r;
        }
        if (tm >> plane) & 1 == 1 {
            lt_m |= eq_m & !r;
            eq_m &= r;
        } else {
            eq_m &= !r;
        }
        if (eq_p | eq_m) == 0 || plane == stop {
            return (lt_p, !lt_m, planes);
        }
        plane -= 1;
    }
}

/// Reusable state of the bit-parallel kernel: per-coin thresholds, the
/// per-block mask cache (epoch-stamped, so switching blocks is O(1)), and
/// the work telemetry accumulated across blocks.
///
/// Counter semantics mirror the scalar sampler *per lane*:
/// `coin_draws` adds the population count of the lanes demanding a mask at
/// the moment it is materialised (eager mode: every active lane for every
/// coin, so an `m`-sample eager run counts exactly `m × n_coins`), and
/// `attacker_checks` adds the live-lane population before each attacker is
/// evaluated. Dead lanes of a partial final block never enter either
/// counter.
#[derive(Debug, Default)]
pub struct BlockScratch {
    thresholds: Vec<u64>,
    mask: Vec<u64>,
    mirror: Vec<u64>,
    stamp: Vec<u64>,
    epoch: u64,
    /// Lane-weighted mask materialisations (see type docs).
    pub coin_draws: u64,
    /// Lane-weighted attacker dominance checks.
    pub attacker_checks: u64,
}

impl BlockScratch {
    /// Bind the scratch to `view` for a run: precompute thresholds, size
    /// the mask cache, and reset the telemetry.
    pub fn prepare(&mut self, view: &CoinView) {
        self.thresholds.clear();
        self.thresholds.extend(view.coin_probs().iter().map(|&p| threshold(p)));
        let m = view.n_coins();
        if self.stamp.len() < m {
            self.stamp.resize(m, 0);
            self.mask.resize(m, 0);
            self.mirror.resize(m, 0);
        }
        self.coin_draws = 0;
        self.attacker_checks = 0;
    }

    #[inline]
    fn materialise(&mut self, key: &BlockKey, k: usize, demand: u64) {
        let t = self.thresholds[k];
        self.mask[k] = match t {
            0 => 0,
            CERTAIN => u64::MAX,
            _ => bernoulli_mask(&mut key.stream(k as u64), t).0,
        };
        self.coin_draws += u64::from(demand.count_ones());
    }

    #[inline]
    fn materialise_pair(&mut self, key: &BlockKey, k: usize, demand: u64) {
        let t = self.thresholds[k];
        (self.mask[k], self.mirror[k]) = match t {
            0 => (0, 0),
            CERTAIN => (u64::MAX, u64::MAX),
            _ => {
                let (p, m, _) = bernoulli_mask_pair(&mut key.stream(k as u64), t);
                (p, m)
            }
        };
        self.coin_draws += u64::from(demand.count_ones());
    }
}

/// Evaluate one 64-world block: returns the mask of lanes (restricted to
/// `lane_mask`) in which **no** attacker dominates the target.
///
/// Attackers are visited in `order` (the checking sequence); a lane leaves
/// the live set as soon as some attacker dominates it, and the block exits
/// early once no lane is live — the paper's lazy-sampling and
/// sorted-checking optimisations at lane granularity. With `lazy == false`
/// every coin mask is materialised up front instead (the ablation
/// baseline's eager semantics), which changes telemetry but — thanks to
/// counter-based seeding — not the masks, hence not the estimate.
pub fn survivors_block(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    block: u64,
    lane_mask: u64,
    lazy: bool,
    s: &mut BlockScratch,
) -> u64 {
    s.epoch += 1;
    let epoch = s.epoch;
    let key = BlockKey::new(seed, block);
    if !lazy {
        for k in 0..view.n_coins() {
            s.stamp[k] = epoch;
            s.materialise(&key, k, lane_mask);
        }
    }
    let mut live = lane_mask;
    for &i in order {
        if live == 0 {
            break;
        }
        s.attacker_checks += u64::from(live.count_ones());
        let mut alive = live;
        for &k in view.attacker_coins(i) {
            let ku = k as usize;
            if s.stamp[ku] != epoch {
                s.stamp[ku] = epoch;
                s.materialise(&key, ku, alive);
            }
            alive &= s.mask[ku];
            if alive == 0 {
                break;
            }
        }
        live &= !alive;
    }
    live
}

/// Antithetic variant of [`survivors_block`]: lane `j` carries a *pair* of
/// mirrored worlds. Returns `(plain_survivors, mirrored_survivors)`.
pub fn survivors_block_antithetic(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    block: u64,
    lane_mask: u64,
    lazy: bool,
    s: &mut BlockScratch,
) -> (u64, u64) {
    s.epoch += 1;
    let epoch = s.epoch;
    let key = BlockKey::new(seed, block);
    if !lazy {
        for k in 0..view.n_coins() {
            s.stamp[k] = epoch;
            s.materialise_pair(&key, k, lane_mask);
        }
    }
    let mut live_p = lane_mask;
    let mut live_m = lane_mask;
    for &i in order {
        if live_p | live_m == 0 {
            break;
        }
        s.attacker_checks += u64::from(live_p.count_ones() + live_m.count_ones());
        let mut ap = live_p;
        let mut am = live_m;
        for &k in view.attacker_coins(i) {
            if ap | am == 0 {
                break;
            }
            let ku = k as usize;
            if s.stamp[ku] != epoch {
                s.stamp[ku] = epoch;
                s.materialise_pair(&key, ku, ap | am);
            }
            ap &= s.mask[ku];
            am &= s.mirror[ku];
        }
        live_p &= !ap;
        live_m &= !am;
    }
    (live_p, live_m)
}

/// The active-lane mask of block `block` when `total` worlds are requested:
/// all 64 lanes for full blocks, the low `total % 64` lanes for the final
/// partial block.
#[inline]
pub fn block_lane_mask(total: u64, block: u64) -> u64 {
    let lanes = (total - block * 64).min(64);
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Per-word block keys of superblock `superblock`: word `w` reuses the key
/// of narrow block `superblock·W + w`, which is what makes wide estimates
/// bit-identical to narrow ones at every width.
#[inline(always)]
pub fn superblock_keys<const W: usize>(seed: u64, superblock: u64) -> [BlockKey; W] {
    std::array::from_fn(|w| BlockKey::new(seed, superblock * W as u64 + w as u64))
}

/// The active-lane masks of superblock `superblock` when `total` worlds
/// are requested: word `w` carries [`block_lane_mask`] of narrow block
/// `superblock·W + w`, or zero past the end of the requested range.
#[inline]
pub fn superblock_lane_mask<const W: usize>(total: u64, superblock: u64) -> [u64; W] {
    std::array::from_fn(|w| {
        let block = superblock * W as u64 + w as u64;
        if block * 64 >= total {
            0
        } else {
            block_lane_mask(total, block)
        }
    })
}

#[inline(always)]
fn popcount_wide<const W: usize>(x: &[u64; W]) -> u64 {
    x.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[inline(always)]
fn any_set<const W: usize>(x: &[u64; W]) -> bool {
    x.iter().fold(0u64, |acc, &w| acc | w) != 0
}

/// `W` independent 64-draw Bernoulli words at threshold `t`, one per block
/// key, evaluated in lock-step (shared plane index, per-word streams).
///
/// Word `w` equals `bernoulli_mask(&mut keys[w].stream(stream), t).0`
/// bit-for-bit: a word whose `eq` reaches zero keeps receiving plane
/// updates, but with `eq == 0` both update rules are no-ops, so its `lt`
/// is already final. `t` must be a regular threshold.
#[inline(always)]
pub fn bernoulli_masks_wide<const W: usize>(keys: &[BlockKey; W], stream: u64, t: u64) -> [u64; W] {
    debug_assert!(t != 0 && t != CERTAIN);
    let stop = t.trailing_zeros();
    let mut rngs: [PlaneRng; W] = std::array::from_fn(|w| keys[w].stream(stream));
    let mut lt = [0u64; W];
    let mut eq = [u64::MAX; W];
    let mut plane = 63u32;
    loop {
        let mut r = [0u64; W];
        for w in 0..W {
            r[w] = rngs[w].next_word();
        }
        if (t >> plane) & 1 == 1 {
            for w in 0..W {
                lt[w] |= eq[w] & !r[w];
                eq[w] &= r[w];
            }
        } else {
            for w in 0..W {
                eq[w] &= !r[w];
            }
        }
        if !any_set(&eq) || plane == stop {
            return lt;
        }
        plane -= 1;
    }
}

/// Wide antithetic masks: `(plain, mirrored)` word arrays from the same
/// per-word plane streams as [`bernoulli_masks_wide`]. Word `w` matches
/// [`bernoulli_mask_pair`] under `keys[w]` bit-for-bit.
#[inline(always)]
pub fn bernoulli_mask_pairs_wide<const W: usize>(
    keys: &[BlockKey; W],
    stream: u64,
    t: u64,
) -> ([u64; W], [u64; W]) {
    debug_assert!(t != 0 && t != CERTAIN);
    let tm = t.wrapping_neg();
    let stop = t.trailing_zeros();
    let mut rngs: [PlaneRng; W] = std::array::from_fn(|w| keys[w].stream(stream));
    let mut lt_p = [0u64; W];
    let mut eq_p = [u64::MAX; W];
    let mut lt_m = [0u64; W];
    let mut eq_m = [u64::MAX; W];
    let mut plane = 63u32;
    loop {
        let mut r = [0u64; W];
        for w in 0..W {
            r[w] = rngs[w].next_word();
        }
        if (t >> plane) & 1 == 1 {
            for w in 0..W {
                lt_p[w] |= eq_p[w] & !r[w];
                eq_p[w] &= r[w];
            }
        } else {
            for w in 0..W {
                eq_p[w] &= !r[w];
            }
        }
        if (tm >> plane) & 1 == 1 {
            for w in 0..W {
                lt_m[w] |= eq_m[w] & !r[w];
                eq_m[w] &= r[w];
            }
        } else {
            for w in 0..W {
                eq_m[w] &= !r[w];
            }
        }
        let mut pending = 0u64;
        for w in 0..W {
            pending |= eq_p[w] | eq_m[w];
        }
        if pending == 0 || plane == stop {
            let mirrored = std::array::from_fn(|w| !lt_m[w]);
            return (lt_p, mirrored);
        }
        plane -= 1;
    }
}

/// The all-words-ready bitmask of a width-`W` kernel (widths are capped at
/// 8 words so the mask packs into the low byte of a coin tag).
#[inline(always)]
const fn all_words<const W: usize>() -> u64 {
    (1u64 << W) - 1
}

/// Reusable state of the wide kernel — the `[u64; W]` counterpart of
/// [`BlockScratch`], with the same lane-weighted telemetry semantics.
///
/// Masks are materialised **per word**: word `w` of a coin's mask is only
/// generated (and its demanding lanes only charged to `coin_draws`) once
/// some lane of word `w` actually demands the coin. Since word `w`'s walk
/// is bit-identical to the narrow kernel on block `superblock·W + w`, the
/// demand times coincide and `coin_draws` is exactly equal at every width
/// — lazy and eager alike.
#[derive(Debug, Default)]
pub struct WideScratch<const W: usize> {
    thresholds: Vec<u64>,
    mask: Vec<[u64; W]>,
    mirror: Vec<[u64; W]>,
    /// Per-coin tag `epoch << 8 | ready`: `ready` is the bitmask of words
    /// whose mask (and mirror, on antithetic runs) has been materialised
    /// and charged this epoch. The hot path compares one tag against
    /// `epoch << 8 | all_words` — a single load, as cheap as the narrow
    /// kernel's epoch stamp.
    tag: Vec<u64>,
    epoch: u64,
    /// Lane-weighted mask materialisations (see [`BlockScratch`]).
    pub coin_draws: u64,
    /// Lane-weighted attacker dominance checks.
    pub attacker_checks: u64,
}

impl<const W: usize> WideScratch<W> {
    /// Bind the scratch to `view` for a run: precompute thresholds, size
    /// the mask cache, and reset the telemetry.
    pub fn prepare(&mut self, view: &CoinView) {
        const { assert!(W >= 1 && W <= 8, "lane widths are capped at 8 words") };
        self.thresholds.clear();
        self.thresholds.extend(view.coin_probs().iter().map(|&p| threshold(p)));
        let m = view.n_coins();
        if self.tag.len() < m {
            self.tag.resize(m, 0);
            self.mask.resize(m, [0; W]);
            self.mirror.resize(m, [0; W]);
        }
        self.coin_draws = 0;
        self.attacker_checks = 0;
    }

    /// Materialise the words in `missing` (a word bitmask) of coin `k`'s
    /// mask and charge `demand`'s lanes of those words to `coin_draws`.
    ///
    /// An all-words miss runs the lock-step wide generator; a partial miss
    /// generates each word from its own narrow stream — bit-identical
    /// output, but a word whose lanes are all dead costs nothing, exactly
    /// like the narrow kernel skipping a block it never reaches.
    #[inline(always)]
    fn materialise_words(
        &mut self,
        keys: &[BlockKey; W],
        k: usize,
        missing: u64,
        demand: &[u64; W],
    ) {
        let t = self.thresholds[k];
        match t {
            0 => self.mask[k] = [0; W],
            CERTAIN => self.mask[k] = [u64::MAX; W],
            _ if missing == all_words::<W>() => {
                self.mask[k] = bernoulli_masks_wide(keys, k as u64, t);
            }
            _ => {
                for (w, key) in keys.iter().enumerate() {
                    if missing >> w & 1 == 1 {
                        self.mask[k][w] = bernoulli_mask(&mut key.stream(k as u64), t).0;
                    }
                }
            }
        }
        for (w, d) in demand.iter().enumerate() {
            if missing >> w & 1 == 1 {
                self.coin_draws += u64::from(d.count_ones());
            }
        }
    }

    /// Antithetic counterpart of [`Self::materialise_words`]: fills both
    /// the plain and mirrored words of `missing`.
    #[inline(always)]
    fn materialise_pair_words(
        &mut self,
        keys: &[BlockKey; W],
        k: usize,
        missing: u64,
        demand: &[u64; W],
    ) {
        let t = self.thresholds[k];
        match t {
            0 => (self.mask[k], self.mirror[k]) = ([0; W], [0; W]),
            CERTAIN => (self.mask[k], self.mirror[k]) = ([u64::MAX; W], [u64::MAX; W]),
            _ if missing == all_words::<W>() => {
                (self.mask[k], self.mirror[k]) = bernoulli_mask_pairs_wide(keys, k as u64, t);
            }
            _ => {
                for (w, key) in keys.iter().enumerate() {
                    if missing >> w & 1 == 1 {
                        let (p, m, _) = bernoulli_mask_pair(&mut key.stream(k as u64), t);
                        self.mask[k][w] = p;
                        self.mirror[k][w] = m;
                    }
                }
            }
        }
        for (w, d) in demand.iter().enumerate() {
            if missing >> w & 1 == 1 {
                self.coin_draws += u64::from(d.count_ones());
            }
        }
    }
}

/// The word bitmask of non-zero entries of `x` — which words still have
/// any lane demanding work.
#[inline(always)]
fn nonzero_words<const W: usize>(x: &[u64; W]) -> u64 {
    x.iter().enumerate().fold(0u64, |bits, (w, &word)| bits | (u64::from(word != 0) << w))
}

#[inline(always)]
fn survivors_wide_impl<const W: usize>(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; W],
    lazy: bool,
    s: &mut WideScratch<W>,
) -> [u64; W] {
    s.epoch += 1;
    let full = (s.epoch << 8) | all_words::<W>();
    let keys = superblock_keys::<W>(seed, superblock);
    if !lazy {
        for k in 0..view.n_coins() {
            s.tag[k] = full;
            s.materialise_words(&keys, k, all_words::<W>(), lane_mask);
        }
    }
    let mut live = *lane_mask;
    let mut pc = popcount_wide(&live);
    for &i in order {
        if pc == 0 {
            break;
        }
        s.attacker_checks += pc;
        let mut alive = live;
        for &k in view.attacker_coins(i) {
            let ku = k as usize;
            if s.tag[ku] != full {
                let ready = if s.tag[ku] >> 8 == s.epoch { s.tag[ku] & 0xff } else { 0 };
                let missing = nonzero_words(&alive) & !ready;
                if missing != 0 {
                    s.materialise_words(&keys, ku, missing, &alive);
                    s.tag[ku] = (s.epoch << 8) | (ready | missing);
                }
            }
            let m = &s.mask[ku];
            for w in 0..W {
                alive[w] &= m[w];
            }
            if !any_set(&alive) {
                break;
            }
        }
        // `live` only changes when this attacker actually killed a lane, so
        // the telemetry popcount is recomputed on kill events alone instead
        // of once per attacker.
        if any_set(&alive) {
            for w in 0..W {
                live[w] &= !alive[w];
            }
            pc = popcount_wide(&live);
        }
    }
    live
}

#[inline(always)]
fn survivors_wide_antithetic_impl<const W: usize>(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; W],
    lazy: bool,
    s: &mut WideScratch<W>,
) -> ([u64; W], [u64; W]) {
    s.epoch += 1;
    let full = (s.epoch << 8) | all_words::<W>();
    let keys = superblock_keys::<W>(seed, superblock);
    if !lazy {
        for k in 0..view.n_coins() {
            s.tag[k] = full;
            s.materialise_pair_words(&keys, k, all_words::<W>(), lane_mask);
        }
    }
    let mut live_p = *lane_mask;
    let mut live_m = *lane_mask;
    let mut pc = popcount_wide(&live_p) + popcount_wide(&live_m);
    for &i in order {
        if pc == 0 {
            break;
        }
        s.attacker_checks += pc;
        let mut ap = live_p;
        let mut am = live_m;
        for &k in view.attacker_coins(i) {
            let mut pending = [0u64; W];
            for w in 0..W {
                pending[w] = ap[w] | am[w];
            }
            if !any_set(&pending) {
                break;
            }
            let ku = k as usize;
            if s.tag[ku] != full {
                let ready = if s.tag[ku] >> 8 == s.epoch { s.tag[ku] & 0xff } else { 0 };
                let missing = nonzero_words(&pending) & !ready;
                if missing != 0 {
                    s.materialise_pair_words(&keys, ku, missing, &pending);
                    s.tag[ku] = (s.epoch << 8) | (ready | missing);
                }
            }
            for w in 0..W {
                ap[w] &= s.mask[ku][w];
                am[w] &= s.mirror[ku][w];
            }
        }
        // Kill-event-only popcount refresh, as in the plain walk.
        if any_set(&ap) || any_set(&am) {
            for w in 0..W {
                live_p[w] &= !ap[w];
                live_m[w] &= !am[w];
            }
            pc = popcount_wide(&live_p) + popcount_wide(&live_m);
        }
    }
    (live_p, live_m)
}

/// Evaluate one `64·W`-world superblock: the wide counterpart of
/// [`survivors_block`], returning per-word survivor masks.
///
/// Word `w` is bit-identical to `survivors_block` on narrow block
/// `superblock·W + w` with lane mask `lane_mask[w]` — at every `W`. The
/// telemetry matches exactly at every width too: per-word materialisation
/// charges each word's demanding lanes at the same walk step the narrow
/// kernel would, and word `w`'s walk is the narrow walk bit for bit.
pub fn survivors_wide<const W: usize>(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; W],
    lazy: bool,
    s: &mut WideScratch<W>,
) -> [u64; W] {
    survivors_wide_impl(view, order, seed, superblock, lane_mask, lazy, s)
}

/// Antithetic variant of [`survivors_wide`]: lane `j` of word `w` carries
/// a pair of mirrored worlds. Returns `(plain, mirrored)` survivor arrays.
pub fn survivors_wide_antithetic<const W: usize>(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; W],
    lazy: bool,
    s: &mut WideScratch<W>,
) -> ([u64; W], [u64; W]) {
    survivors_wide_antithetic_impl(view, order, seed, superblock, lane_mask, lazy, s)
}

/// Whether the running CPU offers AVX2 (memoised after the first call).
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Whether the running CPU offers AVX2 — never, off x86-64.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// The AVX2 compilation of the W=4 kernel.
///
/// No hand-written intrinsics: the `#[target_feature(enable = "avx2")]`
/// wrappers force the `#[inline(always)]` generic kernel — comparator,
/// mask cache, and attacker AND-loop — to be code-generated with 256-bit
/// vectors. The computed bits are identical to the portable path by
/// construction (same straight-line integer ops, different registers);
/// the proptest suite re-checks that on every AVX2 host.
///
/// This module is the one `unsafe` island of the crate (calling a
/// `#[target_feature]` function requires it on stable 1.75); its safe
/// entry points are only reached behind [`avx2_available`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::*;

    #[target_feature(enable = "avx2")]
    unsafe fn survivors_w4_enabled(
        view: &CoinView,
        order: &[usize],
        seed: u64,
        superblock: u64,
        lane_mask: &[u64; 4],
        lazy: bool,
        s: &mut WideScratch<4>,
    ) -> [u64; 4] {
        survivors_wide_impl::<4>(view, order, seed, superblock, lane_mask, lazy, s)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn survivors_w4_antithetic_enabled(
        view: &CoinView,
        order: &[usize],
        seed: u64,
        superblock: u64,
        lane_mask: &[u64; 4],
        lazy: bool,
        s: &mut WideScratch<4>,
    ) -> ([u64; 4], [u64; 4]) {
        survivors_wide_antithetic_impl::<4>(view, order, seed, superblock, lane_mask, lazy, s)
    }

    pub(super) fn survivors_w4(
        view: &CoinView,
        order: &[usize],
        seed: u64,
        superblock: u64,
        lane_mask: &[u64; 4],
        lazy: bool,
        s: &mut WideScratch<4>,
    ) -> [u64; 4] {
        debug_assert!(super::avx2_available());
        // SAFETY: every call site is gated on `avx2_available()`.
        unsafe { survivors_w4_enabled(view, order, seed, superblock, lane_mask, lazy, s) }
    }

    pub(super) fn survivors_w4_antithetic(
        view: &CoinView,
        order: &[usize],
        seed: u64,
        superblock: u64,
        lane_mask: &[u64; 4],
        lazy: bool,
        s: &mut WideScratch<4>,
    ) -> ([u64; 4], [u64; 4]) {
        debug_assert!(super::avx2_available());
        // SAFETY: every call site is gated on `avx2_available()`.
        unsafe {
            survivors_w4_antithetic_enabled(view, order, seed, superblock, lane_mask, lazy, s)
        }
    }
}

/// Runtime-dispatched W=4 superblock: the AVX2 compilation when the CPU
/// has it, the portable `survivors_wide::<4>` otherwise. Bit-identical
/// either way.
pub fn survivors_wide4(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; 4],
    lazy: bool,
    s: &mut WideScratch<4>,
) -> [u64; 4] {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return avx2::survivors_w4(view, order, seed, superblock, lane_mask, lazy, s);
    }
    survivors_wide::<4>(view, order, seed, superblock, lane_mask, lazy, s)
}

/// Runtime-dispatched W=4 antithetic superblock; see [`survivors_wide4`].
pub fn survivors_wide4_antithetic(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    superblock: u64,
    lane_mask: &[u64; 4],
    lazy: bool,
    s: &mut WideScratch<4>,
) -> ([u64; 4], [u64; 4]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return avx2::survivors_w4_antithetic(view, order, seed, superblock, lane_mask, lazy, s);
    }
    survivors_wide_antithetic::<4>(view, order, seed, superblock, lane_mask, lazy, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_edges() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(f64::NAN), 0);
        assert_eq!(threshold(1.0), CERTAIN);
        assert_eq!(threshold(2.0), CERTAIN);
        assert_eq!(threshold(0.5), 1u64 << 63);
        assert_eq!(threshold(0.25), 1u64 << 62);
        // Monotone in p.
        assert!(threshold(0.3) < threshold(0.300001));
    }

    #[test]
    fn masks_are_pure_functions_of_seed_block_and_stream() {
        let a = BlockKey::new(7, 3);
        let b = BlockKey::new(7, 3);
        let t = threshold(0.37);
        assert_eq!(bernoulli_mask(&mut a.stream(5), t).0, bernoulli_mask(&mut b.stream(5), t).0);
        // Different block, stream, or seed → (almost surely) different mask.
        let others = [
            bernoulli_mask(&mut BlockKey::new(7, 4).stream(5), t).0,
            bernoulli_mask(&mut a.stream(6), t).0,
            bernoulli_mask(&mut BlockKey::new(8, 3).stream(5), t).0,
        ];
        let base = bernoulli_mask(&mut a.stream(5), t).0;
        assert!(others.iter().any(|&m| m != base));
    }

    #[test]
    fn mask_hit_rate_matches_probability() {
        for &p in &[0.05, 0.25, 0.5, 0.8, 0.99] {
            let t = threshold(p);
            let mut ones = 0u64;
            let blocks = 2000u64;
            for b in 0..blocks {
                let (m, _) = bernoulli_mask(&mut BlockKey::new(11, b).stream(0), t);
                ones += u64::from(m.count_ones());
            }
            let rate = ones as f64 / (blocks * 64) as f64;
            assert!((rate - p).abs() < 0.01, "p = {p}: rate {rate}");
        }
    }

    #[test]
    fn dyadic_probabilities_cost_few_planes() {
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 0).stream(0), threshold(0.5));
        assert_eq!(planes, 1, "p = 1/2 is one plane per 64 worlds");
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 0).stream(0), threshold(0.25));
        assert_eq!(planes, 2);
        // A generic p stops once eq hits zero — far below 64 planes.
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 1).stream(0), threshold(0.37));
        assert!(planes <= 64);
    }

    #[test]
    fn pair_is_exact_complement_at_half() {
        for b in 0..50 {
            let (p, m, planes) =
                bernoulli_mask_pair(&mut BlockKey::new(3, b).stream(1), threshold(0.5));
            assert_eq!(m, !p, "mirror is the exact complement at p = 1/2");
            assert_eq!(planes, 1);
        }
    }

    #[test]
    fn pair_halves_have_equal_marginals() {
        let t = threshold(0.3);
        let (mut ones_p, mut ones_m) = (0u64, 0u64);
        let blocks = 4000u64;
        for b in 0..blocks {
            let (p, m, _) = bernoulli_mask_pair(&mut BlockKey::new(17, b).stream(2), t);
            ones_p += u64::from(p.count_ones());
            ones_m += u64::from(m.count_ones());
        }
        let total = (blocks * 64) as f64;
        assert!((ones_p as f64 / total - 0.3).abs() < 0.01);
        assert!((ones_m as f64 / total - 0.3).abs() < 0.01);
    }

    #[test]
    fn survivors_match_per_lane_reference() {
        // Small clause system; compare the kernel against a direct
        // per-lane evaluation of the same masks.
        let view = CoinView::from_parts(vec![0.5, 0.3, 0.9], vec![vec![0, 1], vec![1, 2], vec![0]])
            .unwrap();
        let order = view.checking_sequence();
        let mut s = BlockScratch::default();
        s.prepare(&view);
        for block in 0..64 {
            let live = survivors_block(&view, &order, 9, block, u64::MAX, true, &mut s);
            // Reference: rebuild every mask and evaluate lanes one by one.
            let key = BlockKey::new(9, block);
            let masks: Vec<u64> = view
                .coin_probs()
                .iter()
                .enumerate()
                .map(|(k, &p)| {
                    let t = threshold(p);
                    match t {
                        0 => 0,
                        CERTAIN => u64::MAX,
                        _ => bernoulli_mask(&mut key.stream(k as u64), t).0,
                    }
                })
                .collect();
            for lane in 0..64u64 {
                let dominated = (0..view.n_attackers()).any(|i| {
                    view.attacker_coins(i).iter().all(|&k| masks[k as usize] >> lane & 1 == 1)
                });
                assert_eq!(live >> lane & 1 == 1, !dominated, "block {block} lane {lane}");
            }
        }
    }

    #[test]
    fn lazy_and_eager_blocks_agree_bitwise() {
        let view = CoinView::from_parts(
            vec![0.2, 0.7, 0.5, 0.05],
            vec![vec![0, 1], vec![2], vec![1, 3], vec![0, 2, 3]],
        )
        .unwrap();
        let order = view.checking_sequence();
        let mut lazy = BlockScratch::default();
        let mut eager = BlockScratch::default();
        lazy.prepare(&view);
        eager.prepare(&view);
        for block in 0..32 {
            let a = survivors_block(&view, &order, 5, block, u64::MAX, true, &mut lazy);
            let b = survivors_block(&view, &order, 5, block, u64::MAX, false, &mut eager);
            assert_eq!(a, b, "block {block}: lazy and eager see the same masks");
        }
        assert!(lazy.coin_draws <= eager.coin_draws);
        assert_eq!(eager.coin_draws, 32 * 64 * view.n_coins() as u64);
    }

    #[test]
    fn lane_masks_cover_exactly_the_requested_worlds() {
        assert_eq!(block_lane_mask(128, 0), u64::MAX);
        assert_eq!(block_lane_mask(128, 1), u64::MAX);
        assert_eq!(block_lane_mask(65, 1), 1);
        assert_eq!(block_lane_mask(63, 0), (1 << 63) - 1);
        assert_eq!(block_lane_mask(1, 0), 1);
        for total in [1u64, 63, 64, 65, 127, 128, 1000] {
            let blocks = total.div_ceil(64);
            let lanes: u64 =
                (0..blocks).map(|b| u64::from(block_lane_mask(total, b).count_ones())).sum();
            assert_eq!(lanes, total);
        }
    }

    #[test]
    fn degenerate_thresholds_draw_nothing() {
        let view = CoinView::from_parts(vec![0.0, 1.0], vec![vec![0], vec![1]]).unwrap();
        let order = view.checking_sequence();
        let mut s = BlockScratch::default();
        s.prepare(&view);
        // Attacker {1} is certain → no survivors; attacker {0} impossible.
        let live = survivors_block(&view, &order, 1, 0, u64::MAX, true, &mut s);
        assert_eq!(live, 0);
    }

    #[test]
    fn wide_masks_match_narrow_blocks_word_for_word() {
        for &p in &[0.05, 0.37, 0.5, 0.99] {
            let t = threshold(p);
            for sb in 0..16u64 {
                let keys = superblock_keys::<4>(21, sb);
                let wide = bernoulli_masks_wide::<4>(&keys, 7, t);
                for w in 0..4u64 {
                    let narrow = bernoulli_mask(&mut BlockKey::new(21, sb * 4 + w).stream(7), t).0;
                    assert_eq!(wide[w as usize], narrow, "p {p} sb {sb} word {w}");
                }
            }
        }
    }

    #[test]
    fn wide_pairs_match_narrow_pairs_word_for_word() {
        for &p in &[0.3, 0.5, 0.8] {
            let t = threshold(p);
            for sb in 0..16u64 {
                let keys = superblock_keys::<4>(5, sb);
                let (plain, mirrored) = bernoulli_mask_pairs_wide::<4>(&keys, 2, t);
                for w in 0..4u64 {
                    let (np, nm, _) =
                        bernoulli_mask_pair(&mut BlockKey::new(5, sb * 4 + w).stream(2), t);
                    assert_eq!(plain[w as usize], np, "p {p} sb {sb} word {w}");
                    assert_eq!(mirrored[w as usize], nm, "p {p} sb {sb} word {w}");
                }
            }
        }
    }

    fn wide_fixture() -> CoinView {
        CoinView::from_parts(
            vec![0.2, 0.7, 0.5, 0.05, 0.9],
            vec![vec![0, 1], vec![2], vec![1, 3], vec![0, 2, 3], vec![4, 1]],
        )
        .unwrap()
    }

    #[test]
    fn wide_survivors_match_narrow_blocks_at_every_width() {
        let view = wide_fixture();
        let order = view.checking_sequence();
        let mut narrow = BlockScratch::default();
        narrow.prepare(&view);
        let total = 1000u64; // exercises a partial trailing block
        let blocks = total.div_ceil(64);
        let reference: Vec<u64> = (0..blocks)
            .map(|b| {
                survivors_block(&view, &order, 13, b, block_lane_mask(total, b), true, &mut narrow)
            })
            .collect();

        fn check<const W: usize>(view: &CoinView, order: &[usize], total: u64, want: &[u64]) {
            let mut s = WideScratch::<W>::default();
            s.prepare(view);
            let superblocks = total.div_ceil(64 * W as u64);
            let mut got = Vec::new();
            for sb in 0..superblocks {
                let mask = superblock_lane_mask::<W>(total, sb);
                let live = survivors_wide::<W>(view, order, 13, sb, &mask, true, &mut s);
                got.extend_from_slice(&live);
            }
            for (b, &r) in want.iter().enumerate() {
                assert_eq!(got[b], r, "W={W} block {b}");
            }
            // Words past the requested range carry no live lanes.
            for (b, &g) in got.iter().enumerate() {
                if b >= want.len() {
                    assert_eq!(g, 0, "W={W} phantom block {b}");
                }
            }
        }
        check::<1>(&view, &order, total, &reference);
        check::<2>(&view, &order, total, &reference);
        check::<4>(&view, &order, total, &reference);
        check::<8>(&view, &order, total, &reference);
    }

    #[test]
    fn wide_antithetic_matches_narrow_pairs_blockwise() {
        let view = wide_fixture();
        let order = view.checking_sequence();
        let mut narrow = BlockScratch::default();
        narrow.prepare(&view);
        let total = 512u64;
        let blocks = total / 64;
        let reference: Vec<(u64, u64)> = (0..blocks)
            .map(|b| survivors_block_antithetic(&view, &order, 3, b, u64::MAX, true, &mut narrow))
            .collect();
        let mut s = WideScratch::<4>::default();
        s.prepare(&view);
        for sb in 0..blocks / 4 {
            let mask = superblock_lane_mask::<4>(total, sb);
            let (p, m) = survivors_wide_antithetic::<4>(&view, &order, 3, sb, &mask, true, &mut s);
            for w in 0..4 {
                let (rp, rm) = reference[(sb * 4) as usize + w];
                assert_eq!(p[w], rp, "sb {sb} word {w} plain");
                assert_eq!(m[w], rm, "sb {sb} word {w} mirrored");
            }
        }
    }

    #[test]
    fn wide_eager_telemetry_counts_active_worlds_times_coins() {
        let view = wide_fixture();
        let order = view.checking_sequence();
        let total = 1000u64;
        let mut s = WideScratch::<4>::default();
        s.prepare(&view);
        for sb in 0..total.div_ceil(256) {
            let mask = superblock_lane_mask::<4>(total, sb);
            survivors_wide::<4>(&view, &order, 13, sb, &mask, false, &mut s);
        }
        assert_eq!(s.coin_draws, total * view.n_coins() as u64);
    }

    #[test]
    fn wide_width_one_telemetry_matches_block_scratch_exactly() {
        let view = wide_fixture();
        let order = view.checking_sequence();
        let mut narrow = BlockScratch::default();
        let mut wide = WideScratch::<1>::default();
        narrow.prepare(&view);
        wide.prepare(&view);
        for b in 0..32u64 {
            let a = survivors_block(&view, &order, 9, b, u64::MAX, true, &mut narrow);
            let w = survivors_wide::<1>(&view, &order, 9, b, &[u64::MAX], true, &mut wide);
            assert_eq!([a], w);
        }
        assert_eq!(narrow.coin_draws, wide.coin_draws);
        assert_eq!(narrow.attacker_checks, wide.attacker_checks);
    }

    #[test]
    fn avx2_dispatch_is_bit_identical_when_detected() {
        let view = wide_fixture();
        let order = view.checking_sequence();
        if !avx2_available() {
            return; // nothing to compare on this host
        }
        let mut portable = WideScratch::<4>::default();
        let mut vectored = WideScratch::<4>::default();
        portable.prepare(&view);
        vectored.prepare(&view);
        for sb in 0..32u64 {
            let mask = [u64::MAX; 4];
            let a = survivors_wide::<4>(&view, &order, 77, sb, &mask, true, &mut portable);
            let b = survivors_wide4(&view, &order, 77, sb, &mask, true, &mut vectored);
            assert_eq!(a, b, "superblock {sb}");
            let (ap, am) =
                survivors_wide_antithetic::<4>(&view, &order, 77, sb, &mask, true, &mut portable);
            let (bp, bm) =
                survivors_wide4_antithetic(&view, &order, 77, sb, &mask, true, &mut vectored);
            assert_eq!((ap, am), (bp, bm), "antithetic superblock {sb}");
        }
        assert_eq!(portable.coin_draws, vectored.coin_draws);
        assert_eq!(portable.attacker_checks, vectored.attacker_checks);
    }

    #[test]
    fn superblock_lane_masks_cover_exactly_the_requested_worlds() {
        for total in [1u64, 63, 64, 65, 255, 256, 257, 1000, 4096] {
            let superblocks = total.div_ceil(256);
            let lanes: u64 = (0..superblocks)
                .map(|sb| popcount_wide(&superblock_lane_mask::<4>(total, sb)))
                .sum();
            assert_eq!(lanes, total, "total {total}");
            // Word w mirrors the narrow lane mask of block sb·W + w.
            for sb in 0..superblocks {
                let mask = superblock_lane_mask::<4>(total, sb);
                for w in 0..4u64 {
                    let block = sb * 4 + w;
                    let want = if block * 64 >= total { 0 } else { block_lane_mask(total, block) };
                    assert_eq!(mask[w as usize], want);
                }
            }
        }
    }

    #[test]
    fn lane_width_normalisation_rounds_down_to_supported() {
        assert_eq!(normalize_lane_words(0), 1);
        assert_eq!(normalize_lane_words(1), 1);
        assert_eq!(normalize_lane_words(2), 2);
        assert_eq!(normalize_lane_words(3), 2);
        assert_eq!(normalize_lane_words(4), 4);
        assert_eq!(normalize_lane_words(7), 4);
        assert_eq!(normalize_lane_words(8), 8);
        assert_eq!(normalize_lane_words(64), 8);
    }
}
