//! Bit-parallel possible worlds: 64 worlds per machine word.
//!
//! The Monte-Carlo estimators sample a possible world by flipping one
//! Bernoulli coin per distinct `(dimension, foreign value)` pair and asking
//! whether any attacker has all of its coins winning. Worlds are mutually
//! independent, so 64 of them can share a machine word: **lane** `j` of a
//! `u64` holds world `j` of the current *block*. A coin then draws a single
//! `u64` *mask* (bit `j` set iff the coin wins in world `j`), an attacker
//! dominates in exactly the lanes where the AND of its coin masks is set,
//! and the target survives in the complement of the OR over attackers.
//!
//! ## Bit-sliced Bernoulli masks
//!
//! A coin with win probability `p` wins in lane `j` iff a uniform 64-bit
//! integer `U_j < t` where `t = round(p · 2⁶⁴)` (see [`threshold`]). The 64
//! comparisons are evaluated *bit-sliced*: the RNG emits one word per bit
//! *plane* (bit `j` of plane `b` is bit `b` of `U_j`) and the comparison
//! walks planes MSB-first, maintaining `lt` (lanes decided `U < t`) and
//! `eq` (lanes still equal to `t`'s prefix):
//!
//! * `t`'s bit is 1 → `lt |= eq & !r; eq &= r;`
//! * `t`'s bit is 0 → `eq &= !r;`
//!
//! stopping as soon as `eq == 0` or at `t.trailing_zeros()` (every bit of
//! `t` below its lowest set bit is 0, so still-equal lanes can no longer
//! drop below `t`). The expected plane count is ~2 + log₂ plus dyadic
//! shortcuts — `p = 1/2` costs exactly **one** word for 64 worlds, versus
//! 64 `f64` draws in the scalar sampler.
//!
//! ## Counter-based seeding
//!
//! All randomness is a pure function of `(seed, block, stream, plane)`
//! through SplitMix64-style mixing ([`BlockKey`]): the mask of coin `k` in
//! block `b` does not depend on *when* (or whether) other masks are drawn.
//! Estimates are therefore bit-reproducible regardless of thread count,
//! chunk order, or lazy vs eager mask materialisation.
//!
//! ## Antithetic lanes
//!
//! The antithetic estimator mirrors a uniform `u → 1 − u`; on integers the
//! mirrored uniform is the bitwise complement `!U`, and the mirrored win
//! `!U < t` is `U ≥ 2⁶⁴ − t`, i.e. the complement of a plain comparison
//! against `t.wrapping_neg()`. [`bernoulli_mask_pair`] evaluates both
//! comparisons from one shared plane stream (`t` and `t.wrapping_neg()`
//! even share `trailing_zeros`), so a pair of mirrored worlds costs the
//! same planes as one. At `p = 1/2` the two masks are exact complements —
//! the perfect-mirror case of the scalar implementation is preserved
//! bit-for-bit in spirit and in statistics.

use crate::coins::CoinView;

/// Golden-ratio increment of the SplitMix64 stream.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective avalanche mix of one word.
#[inline]
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sentinel threshold for a certain coin (`p ≥ 1`): mask `!0`, no draws.
pub const CERTAIN: u64 = u64::MAX;

/// Win threshold of a coin: wins iff a uniform `u64` is `< t`, so
/// `P(win) = t / 2⁶⁴` exactly.
///
/// `p ≤ 0` maps to 0 (never wins, no randomness consumed) and `p ≥ 1` to
/// the [`CERTAIN`] sentinel (always wins, no randomness consumed). A `p`
/// within `2⁻⁶⁴` of 0 or 1 rounds into those exact cases — far below every
/// statistical tolerance in the workspace, and a *better* rounding than
/// the scalar `f64` comparison performs.
#[inline]
pub fn threshold(p: f64) -> u64 {
    // NaN takes this branch too: an undefined preference never wins.
    if p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return CERTAIN;
    }
    // Saturating float→int cast: p close enough to 1 lands on u64::MAX,
    // which is exactly the CERTAIN sentinel.
    (p * 18_446_744_073_709_551_616.0) as u64
}

/// The deterministic randomness root of one 64-world block: mixes
/// `(seed, block)` once, then hands out independent per-stream plane
/// generators (streams are coins, plus reserved auxiliary streams).
#[derive(Debug, Clone, Copy)]
pub struct BlockKey {
    base: u64,
}

/// First stream id reserved for non-coin randomness (coin ids are `u32`,
/// so streams `< 2³²` belong to coins).
pub const AUX_STREAM: u64 = 1 << 32;

impl BlockKey {
    /// Key of `block` under `seed`.
    #[inline]
    pub fn new(seed: u64, block: u64) -> Self {
        Self { base: mix(seed ^ mix(block.wrapping_mul(GOLDEN) ^ 0x243f_6a88_85a3_08d3)) }
    }

    /// The plane generator of one stream within this block.
    #[inline]
    pub fn stream(&self, stream: u64) -> PlaneRng {
        PlaneRng { state: mix(self.base ^ stream.wrapping_mul(0xd1b5_4a32_d192_ed03)) }
    }
}

/// A SplitMix64 stream emitting one 64-lane bit plane per call. Fully
/// determined by its [`BlockKey`] and stream id.
#[derive(Debug, Clone)]
pub struct PlaneRng {
    state: u64,
}

impl PlaneRng {
    /// Next bit plane (also usable as a plain uniform `u64`).
    #[inline]
    pub fn next_word(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

/// 64 independent Bernoulli draws at threshold `t` — one mask word.
///
/// Returns `(mask, planes_consumed)`. `t` must be a regular threshold
/// (neither 0 nor [`CERTAIN`]); the degenerate cases never touch the RNG
/// and are handled by the callers.
#[inline]
pub fn bernoulli_mask(rng: &mut PlaneRng, t: u64) -> (u64, u32) {
    debug_assert!(t != 0 && t != CERTAIN);
    let stop = t.trailing_zeros();
    let mut lt = 0u64;
    let mut eq = u64::MAX;
    let mut planes = 0u32;
    let mut plane = 63u32;
    loop {
        let r = rng.next_word();
        planes += 1;
        if (t >> plane) & 1 == 1 {
            lt |= eq & !r;
            eq &= r;
        } else {
            eq &= !r;
        }
        if eq == 0 || plane == stop {
            // Below the lowest set bit of t every remaining bit of t is 0:
            // still-equal lanes satisfy U ≥ t and stay losses.
            return (lt, planes);
        }
        plane -= 1;
    }
}

/// The plain and mirrored masks of an antithetic pair, from one shared
/// plane stream: `(plain, mirrored, planes_consumed)`.
///
/// Lane `j` of `plain` is `U_j < t`; lane `j` of `mirrored` is
/// `!U_j < t`, i.e. `U_j ≥ t.wrapping_neg()`. Both events have probability
/// `t / 2⁶⁴`, and at `t = 2⁶³` (`p = 1/2`) the masks are exact
/// complements.
#[inline]
pub fn bernoulli_mask_pair(rng: &mut PlaneRng, t: u64) -> (u64, u64, u32) {
    debug_assert!(t != 0 && t != CERTAIN);
    let tm = t.wrapping_neg();
    // −t = t with its trailing zeros preserved, so one stop serves both.
    let stop = t.trailing_zeros();
    let (mut lt_p, mut eq_p) = (0u64, u64::MAX);
    let (mut lt_m, mut eq_m) = (0u64, u64::MAX);
    let mut planes = 0u32;
    let mut plane = 63u32;
    loop {
        let r = rng.next_word();
        planes += 1;
        if (t >> plane) & 1 == 1 {
            lt_p |= eq_p & !r;
            eq_p &= r;
        } else {
            eq_p &= !r;
        }
        if (tm >> plane) & 1 == 1 {
            lt_m |= eq_m & !r;
            eq_m &= r;
        } else {
            eq_m &= !r;
        }
        if (eq_p | eq_m) == 0 || plane == stop {
            return (lt_p, !lt_m, planes);
        }
        plane -= 1;
    }
}

/// Reusable state of the bit-parallel kernel: per-coin thresholds, the
/// per-block mask cache (epoch-stamped, so switching blocks is O(1)), and
/// the work telemetry accumulated across blocks.
///
/// Counter semantics mirror the scalar sampler *per lane*:
/// `coin_draws` adds the population count of the lanes demanding a mask at
/// the moment it is materialised (eager mode: every active lane for every
/// coin, so an `m`-sample eager run counts exactly `m × n_coins`), and
/// `attacker_checks` adds the live-lane population before each attacker is
/// evaluated. Dead lanes of a partial final block never enter either
/// counter.
#[derive(Debug, Default)]
pub struct BlockScratch {
    thresholds: Vec<u64>,
    mask: Vec<u64>,
    mirror: Vec<u64>,
    stamp: Vec<u64>,
    epoch: u64,
    /// Lane-weighted mask materialisations (see type docs).
    pub coin_draws: u64,
    /// Lane-weighted attacker dominance checks.
    pub attacker_checks: u64,
}

impl BlockScratch {
    /// Bind the scratch to `view` for a run: precompute thresholds, size
    /// the mask cache, and reset the telemetry.
    pub fn prepare(&mut self, view: &CoinView) {
        self.thresholds.clear();
        self.thresholds.extend(view.coin_probs().iter().map(|&p| threshold(p)));
        let m = view.n_coins();
        if self.stamp.len() < m {
            self.stamp.resize(m, 0);
            self.mask.resize(m, 0);
            self.mirror.resize(m, 0);
        }
        self.coin_draws = 0;
        self.attacker_checks = 0;
    }

    #[inline]
    fn materialise(&mut self, key: &BlockKey, k: usize, demand: u64) {
        let t = self.thresholds[k];
        self.mask[k] = match t {
            0 => 0,
            CERTAIN => u64::MAX,
            _ => bernoulli_mask(&mut key.stream(k as u64), t).0,
        };
        self.coin_draws += u64::from(demand.count_ones());
    }

    #[inline]
    fn materialise_pair(&mut self, key: &BlockKey, k: usize, demand: u64) {
        let t = self.thresholds[k];
        (self.mask[k], self.mirror[k]) = match t {
            0 => (0, 0),
            CERTAIN => (u64::MAX, u64::MAX),
            _ => {
                let (p, m, _) = bernoulli_mask_pair(&mut key.stream(k as u64), t);
                (p, m)
            }
        };
        self.coin_draws += u64::from(demand.count_ones());
    }
}

/// Evaluate one 64-world block: returns the mask of lanes (restricted to
/// `lane_mask`) in which **no** attacker dominates the target.
///
/// Attackers are visited in `order` (the checking sequence); a lane leaves
/// the live set as soon as some attacker dominates it, and the block exits
/// early once no lane is live — the paper's lazy-sampling and
/// sorted-checking optimisations at lane granularity. With `lazy == false`
/// every coin mask is materialised up front instead (the ablation
/// baseline's eager semantics), which changes telemetry but — thanks to
/// counter-based seeding — not the masks, hence not the estimate.
pub fn survivors_block(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    block: u64,
    lane_mask: u64,
    lazy: bool,
    s: &mut BlockScratch,
) -> u64 {
    s.epoch += 1;
    let epoch = s.epoch;
    let key = BlockKey::new(seed, block);
    if !lazy {
        for k in 0..view.n_coins() {
            s.stamp[k] = epoch;
            s.materialise(&key, k, lane_mask);
        }
    }
    let mut live = lane_mask;
    for &i in order {
        if live == 0 {
            break;
        }
        s.attacker_checks += u64::from(live.count_ones());
        let mut alive = live;
        for &k in view.attacker_coins(i) {
            let ku = k as usize;
            if s.stamp[ku] != epoch {
                s.stamp[ku] = epoch;
                s.materialise(&key, ku, alive);
            }
            alive &= s.mask[ku];
            if alive == 0 {
                break;
            }
        }
        live &= !alive;
    }
    live
}

/// Antithetic variant of [`survivors_block`]: lane `j` carries a *pair* of
/// mirrored worlds. Returns `(plain_survivors, mirrored_survivors)`.
pub fn survivors_block_antithetic(
    view: &CoinView,
    order: &[usize],
    seed: u64,
    block: u64,
    lane_mask: u64,
    lazy: bool,
    s: &mut BlockScratch,
) -> (u64, u64) {
    s.epoch += 1;
    let epoch = s.epoch;
    let key = BlockKey::new(seed, block);
    if !lazy {
        for k in 0..view.n_coins() {
            s.stamp[k] = epoch;
            s.materialise_pair(&key, k, lane_mask);
        }
    }
    let mut live_p = lane_mask;
    let mut live_m = lane_mask;
    for &i in order {
        if live_p | live_m == 0 {
            break;
        }
        s.attacker_checks += u64::from(live_p.count_ones() + live_m.count_ones());
        let mut ap = live_p;
        let mut am = live_m;
        for &k in view.attacker_coins(i) {
            if ap | am == 0 {
                break;
            }
            let ku = k as usize;
            if s.stamp[ku] != epoch {
                s.stamp[ku] = epoch;
                s.materialise_pair(&key, ku, ap | am);
            }
            ap &= s.mask[ku];
            am &= s.mirror[ku];
        }
        live_p &= !ap;
        live_m &= !am;
    }
    (live_p, live_m)
}

/// The active-lane mask of block `block` when `total` worlds are requested:
/// all 64 lanes for full blocks, the low `total % 64` lanes for the final
/// partial block.
#[inline]
pub fn block_lane_mask(total: u64, block: u64) -> u64 {
    let lanes = (total - block * 64).min(64);
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_edges() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(f64::NAN), 0);
        assert_eq!(threshold(1.0), CERTAIN);
        assert_eq!(threshold(2.0), CERTAIN);
        assert_eq!(threshold(0.5), 1u64 << 63);
        assert_eq!(threshold(0.25), 1u64 << 62);
        // Monotone in p.
        assert!(threshold(0.3) < threshold(0.300001));
    }

    #[test]
    fn masks_are_pure_functions_of_seed_block_and_stream() {
        let a = BlockKey::new(7, 3);
        let b = BlockKey::new(7, 3);
        let t = threshold(0.37);
        assert_eq!(bernoulli_mask(&mut a.stream(5), t).0, bernoulli_mask(&mut b.stream(5), t).0);
        // Different block, stream, or seed → (almost surely) different mask.
        let others = [
            bernoulli_mask(&mut BlockKey::new(7, 4).stream(5), t).0,
            bernoulli_mask(&mut a.stream(6), t).0,
            bernoulli_mask(&mut BlockKey::new(8, 3).stream(5), t).0,
        ];
        let base = bernoulli_mask(&mut a.stream(5), t).0;
        assert!(others.iter().any(|&m| m != base));
    }

    #[test]
    fn mask_hit_rate_matches_probability() {
        for &p in &[0.05, 0.25, 0.5, 0.8, 0.99] {
            let t = threshold(p);
            let mut ones = 0u64;
            let blocks = 2000u64;
            for b in 0..blocks {
                let (m, _) = bernoulli_mask(&mut BlockKey::new(11, b).stream(0), t);
                ones += u64::from(m.count_ones());
            }
            let rate = ones as f64 / (blocks * 64) as f64;
            assert!((rate - p).abs() < 0.01, "p = {p}: rate {rate}");
        }
    }

    #[test]
    fn dyadic_probabilities_cost_few_planes() {
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 0).stream(0), threshold(0.5));
        assert_eq!(planes, 1, "p = 1/2 is one plane per 64 worlds");
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 0).stream(0), threshold(0.25));
        assert_eq!(planes, 2);
        // A generic p stops once eq hits zero — far below 64 planes.
        let (_, planes) = bernoulli_mask(&mut BlockKey::new(0, 1).stream(0), threshold(0.37));
        assert!(planes <= 64);
    }

    #[test]
    fn pair_is_exact_complement_at_half() {
        for b in 0..50 {
            let (p, m, planes) =
                bernoulli_mask_pair(&mut BlockKey::new(3, b).stream(1), threshold(0.5));
            assert_eq!(m, !p, "mirror is the exact complement at p = 1/2");
            assert_eq!(planes, 1);
        }
    }

    #[test]
    fn pair_halves_have_equal_marginals() {
        let t = threshold(0.3);
        let (mut ones_p, mut ones_m) = (0u64, 0u64);
        let blocks = 4000u64;
        for b in 0..blocks {
            let (p, m, _) = bernoulli_mask_pair(&mut BlockKey::new(17, b).stream(2), t);
            ones_p += u64::from(p.count_ones());
            ones_m += u64::from(m.count_ones());
        }
        let total = (blocks * 64) as f64;
        assert!((ones_p as f64 / total - 0.3).abs() < 0.01);
        assert!((ones_m as f64 / total - 0.3).abs() < 0.01);
    }

    #[test]
    fn survivors_match_per_lane_reference() {
        // Small clause system; compare the kernel against a direct
        // per-lane evaluation of the same masks.
        let view = CoinView::from_parts(vec![0.5, 0.3, 0.9], vec![vec![0, 1], vec![1, 2], vec![0]])
            .unwrap();
        let order = view.checking_sequence();
        let mut s = BlockScratch::default();
        s.prepare(&view);
        for block in 0..64 {
            let live = survivors_block(&view, &order, 9, block, u64::MAX, true, &mut s);
            // Reference: rebuild every mask and evaluate lanes one by one.
            let key = BlockKey::new(9, block);
            let masks: Vec<u64> = view
                .coin_probs()
                .iter()
                .enumerate()
                .map(|(k, &p)| {
                    let t = threshold(p);
                    match t {
                        0 => 0,
                        CERTAIN => u64::MAX,
                        _ => bernoulli_mask(&mut key.stream(k as u64), t).0,
                    }
                })
                .collect();
            for lane in 0..64u64 {
                let dominated = (0..view.n_attackers()).any(|i| {
                    view.attacker_coins(i).iter().all(|&k| masks[k as usize] >> lane & 1 == 1)
                });
                assert_eq!(live >> lane & 1 == 1, !dominated, "block {block} lane {lane}");
            }
        }
    }

    #[test]
    fn lazy_and_eager_blocks_agree_bitwise() {
        let view = CoinView::from_parts(
            vec![0.2, 0.7, 0.5, 0.05],
            vec![vec![0, 1], vec![2], vec![1, 3], vec![0, 2, 3]],
        )
        .unwrap();
        let order = view.checking_sequence();
        let mut lazy = BlockScratch::default();
        let mut eager = BlockScratch::default();
        lazy.prepare(&view);
        eager.prepare(&view);
        for block in 0..32 {
            let a = survivors_block(&view, &order, 5, block, u64::MAX, true, &mut lazy);
            let b = survivors_block(&view, &order, 5, block, u64::MAX, false, &mut eager);
            assert_eq!(a, b, "block {block}: lazy and eager see the same masks");
        }
        assert!(lazy.coin_draws <= eager.coin_draws);
        assert_eq!(eager.coin_draws, 32 * 64 * view.n_coins() as u64);
    }

    #[test]
    fn lane_masks_cover_exactly_the_requested_worlds() {
        assert_eq!(block_lane_mask(128, 0), u64::MAX);
        assert_eq!(block_lane_mask(128, 1), u64::MAX);
        assert_eq!(block_lane_mask(65, 1), 1);
        assert_eq!(block_lane_mask(63, 0), (1 << 63) - 1);
        assert_eq!(block_lane_mask(1, 0), 1);
        for total in [1u64, 63, 64, 65, 127, 128, 1000] {
            let blocks = total.div_ceil(64);
            let lanes: u64 =
                (0..blocks).map(|b| u64::from(block_lane_mask(total, b).count_ones())).sum();
            assert_eq!(lanes, total);
        }
    }

    #[test]
    fn degenerate_thresholds_draw_nothing() {
        let view = CoinView::from_parts(vec![0.0, 1.0], vec![vec![0], vec![1]]).unwrap();
        let order = view.checking_sequence();
        let mut s = BlockScratch::default();
        s.prepare(&view);
        // Attacker {1} is certain → no survivors; attacker {0} impossible.
        let live = survivors_block(&view, &order, 1, 0, u64::MAX, true, &mut s);
        assert_eq!(live, 0);
    }
}
