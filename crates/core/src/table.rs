//! Column-major object tables.
//!
//! A [`Table`] stores `n` objects over `d` categorical dimensions. Storage
//! is column-major (`columns[j][row]`): the hot loops of every algorithm in
//! this workspace scan one dimension of many objects (building the coin
//! view, absorption indexing, partitioning), so keeping each dimension
//! contiguous is the cache-friendly layout.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::schema::Schema;
use crate::types::{DimId, ObjectId, ValueId};

/// An immutable table of objects with fixed categorical attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    /// `columns[j][row]` is the value of object `row` on dimension `j`.
    columns: Vec<Vec<ValueId>>,
    rows: usize,
}

impl Table {
    /// Build a table from row-major raw value codes over a raw schema.
    ///
    /// This is the entry point used by the synthetic generators: values are
    /// opaque `u32` codes, dictionaries are not needed.
    pub fn from_rows_raw(d: usize, rows: &[Vec<u32>]) -> Result<Self> {
        let schema = Schema::raw(d)?;
        let mut b = TableBuilder::new(schema);
        for r in rows {
            let vals: Vec<ValueId> = r.iter().map(|&v| ValueId(v)).collect();
            b.push_row(&vals)?;
        }
        Ok(b.finish())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Dimensionality `d`.
    pub fn dimensionality(&self) -> usize {
        self.schema.dimensionality()
    }

    /// Number of objects `n + 1` (the paper counts the target separately;
    /// the table does not).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The value of object `obj` on dimension `dim`.
    #[inline]
    pub fn value(&self, obj: ObjectId, dim: DimId) -> ValueId {
        self.columns[dim.index()][obj.index()]
    }

    /// One whole column (all objects' values on `dim`).
    pub fn column(&self, dim: DimId) -> &[ValueId] {
        &self.columns[dim.index()]
    }

    /// The full row of `obj` as a freshly allocated vector.
    pub fn row(&self, obj: ObjectId) -> Vec<ValueId> {
        (0..self.dimensionality()).map(|j| self.columns[j][obj.index()]).collect()
    }

    /// Iterate over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.rows).map(ObjectId::from)
    }

    /// Whether two rows are identical on every dimension.
    pub fn rows_equal(&self, a: ObjectId, b: ObjectId) -> bool {
        (0..self.dimensionality()).all(|j| self.columns[j][a.index()] == self.columns[j][b.index()])
    }

    /// Find the first pair of duplicate rows, if any.
    ///
    /// The model assumes no duplicate objects (Section 2); algorithms call
    /// this during input validation.
    pub fn find_duplicate(&self) -> Option<(ObjectId, ObjectId)> {
        let mut seen: HashMap<Vec<ValueId>, ObjectId> = HashMap::with_capacity(self.rows);
        for obj in self.objects() {
            let key = self.row(obj);
            if let Some(&first) = seen.get(&key) {
                return Some((first, obj));
            }
            seen.insert(key, obj);
        }
        None
    }

    /// Validate that a prospective target id is in range and that the table
    /// contains no duplicate rows; returns the duplicate error otherwise.
    pub fn validate_for_target(&self, target: ObjectId) -> Result<()> {
        if target.index() >= self.rows {
            return Err(CoreError::TargetOutOfRange { target, rows: self.rows });
        }
        if let Some((first, second)) = self.find_duplicate() {
            return Err(CoreError::DuplicateObject { first, second });
        }
        Ok(())
    }

    /// Number of distinct values actually occurring in column `dim`.
    pub fn distinct_in_column(&self, dim: DimId) -> usize {
        let mut vals: Vec<ValueId> = self.columns[dim.index()].clone();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    }

    /// Project the table onto a subset of dimensions, preserving row order.
    ///
    /// Rows that become duplicates under the projection are *kept*; callers
    /// that need distinct rows (e.g. the Figure 15 4-d Nursery experiment)
    /// should follow with [`Table::dedup_rows`].
    pub fn project(&self, dims: &[DimId]) -> Result<Table> {
        let schema = self.schema.project(dims)?;
        let columns: Vec<Vec<ValueId>> =
            dims.iter().map(|&j| self.columns[j.index()].clone()).collect();
        Ok(Table { schema, columns, rows: self.rows })
    }

    /// Remove duplicate rows, keeping the first occurrence of each distinct
    /// row and preserving relative order.
    pub fn dedup_rows(&self) -> Table {
        let d = self.dimensionality();
        let mut seen: HashMap<Vec<ValueId>, ()> = HashMap::new();
        let mut columns: Vec<Vec<ValueId>> = vec![Vec::new(); d];
        let mut rows = 0;
        for obj in self.objects() {
            let key = self.row(obj);
            if seen.insert(key.clone(), ()).is_none() {
                for (j, v) in key.into_iter().enumerate() {
                    columns[j].push(v);
                }
                rows += 1;
            }
        }
        Table { schema: self.schema.clone(), columns, rows }
    }

    /// Take the first `k` rows (used to subsample large data sets while
    /// keeping generation deterministic).
    pub fn head(&self, k: usize) -> Table {
        let k = k.min(self.rows);
        let columns: Vec<Vec<ValueId>> = self.columns.iter().map(|c| c[..k].to_vec()).collect();
        Table { schema: self.schema.clone(), columns, rows: k }
    }

    /// Copy-on-write append: a new table with `values` as its last row.
    ///
    /// Only the columns are cloned (the schema is shared state already);
    /// existing rows keep their ids. Duplicate detection is *not* done
    /// here — [`crate::batch::BatchCoinContext::with_row_appended`] checks
    /// it against its posting lists, which is cheaper than a full rescan.
    pub fn with_row_appended(&self, values: &[ValueId]) -> Result<Table> {
        let d = self.dimensionality();
        if values.len() != d {
            return Err(CoreError::DimensionMismatch { expected: d, got: values.len() });
        }
        let mut columns = self.columns.clone();
        for (j, &v) in values.iter().enumerate() {
            columns[j].push(v);
        }
        Ok(Table { schema: self.schema.clone(), columns, rows: self.rows + 1 })
    }

    /// Copy-on-write removal: a new table without row `obj`. Rows after
    /// `obj` shift down by one, preserving relative order.
    pub fn with_row_removed(&self, obj: ObjectId) -> Result<Table> {
        if obj.index() >= self.rows {
            return Err(CoreError::TargetOutOfRange { target: obj, rows: self.rows });
        }
        let mut columns = self.columns.clone();
        for col in &mut columns {
            col.remove(obj.index());
        }
        Ok(Table { schema: self.schema.clone(), columns, rows: self.rows - 1 })
    }

    /// Render one row with dictionary labels where available.
    pub fn display_row(&self, obj: ObjectId) -> String {
        let parts: Vec<String> = (0..self.dimensionality())
            .map(|j| {
                let dim = DimId::from(j);
                self.schema.display_value(dim, self.value(obj, dim))
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// Incremental builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<ValueId>>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table over `schema`.
    pub fn new(schema: Schema) -> Self {
        let d = schema.dimensionality();
        Self { schema, columns: vec![Vec::new(); d], rows: 0 }
    }

    /// Push a row of pre-coded values.
    pub fn push_row(&mut self, values: &[ValueId]) -> Result<ObjectId> {
        let d = self.schema.dimensionality();
        if values.len() != d {
            return Err(CoreError::DimensionMismatch { expected: d, got: values.len() });
        }
        for (j, &v) in values.iter().enumerate() {
            self.columns[j].push(v);
        }
        let id = ObjectId::from(self.rows);
        self.rows += 1;
        Ok(id)
    }

    /// Push a row of labels, interning each into the per-dimension
    /// dictionary. Fails on raw (dictionary-less) schemas.
    pub fn push_labelled_row<S: AsRef<str>>(&mut self, labels: &[S]) -> Result<ObjectId> {
        let d = self.schema.dimensionality();
        if labels.len() != d {
            return Err(CoreError::DimensionMismatch { expected: d, got: labels.len() });
        }
        let mut coded = Vec::with_capacity(d);
        for (j, l) in labels.iter().enumerate() {
            coded.push(self.schema.intern(DimId::from(j), l.as_ref())?);
        }
        self.push_row(&coded)
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finish, yielding the immutable table.
    pub fn finish(self) -> Table {
        Table { schema: self.schema, columns: self.columns, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        Table::from_rows_raw(2, &[vec![0, 1], vec![0, 2], vec![3, 1]]).unwrap()
    }

    #[test]
    fn column_major_accessors_agree_with_rows() {
        let t = small();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dimensionality(), 2);
        assert_eq!(t.value(ObjectId(1), DimId(1)), ValueId(2));
        assert_eq!(t.row(ObjectId(2)), vec![ValueId(3), ValueId(1)]);
        assert_eq!(t.column(DimId(0)), &[ValueId(0), ValueId(0), ValueId(3)]);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = Table::from_rows_raw(2, &[vec![0, 1, 2]]).unwrap_err();
        assert_eq!(err, CoreError::DimensionMismatch { expected: 2, got: 3 });
    }

    #[test]
    fn duplicate_detection_finds_first_pair() {
        let t = Table::from_rows_raw(2, &[vec![0, 1], vec![2, 3], vec![0, 1]]).unwrap();
        assert_eq!(t.find_duplicate(), Some((ObjectId(0), ObjectId(2))));
        assert!(matches!(
            t.validate_for_target(ObjectId(0)),
            Err(CoreError::DuplicateObject { .. })
        ));
    }

    #[test]
    fn target_range_is_validated() {
        let t = small();
        assert!(t.validate_for_target(ObjectId(2)).is_ok());
        assert!(matches!(
            t.validate_for_target(ObjectId(3)),
            Err(CoreError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn projection_and_dedup() {
        let t = small();
        // Projecting onto dim 0 makes rows 0 and 1 identical.
        let p = t.project(&[DimId(0)]).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.find_duplicate().is_some());
        let dd = p.dedup_rows();
        assert_eq!(dd.len(), 2);
        assert!(dd.find_duplicate().is_none());
        assert_eq!(dd.value(ObjectId(0), DimId(0)), ValueId(0));
        assert_eq!(dd.value(ObjectId(1), DimId(0)), ValueId(3));
    }

    #[test]
    fn labelled_rows_intern_per_dimension() {
        let schema = Schema::named(["composer", "mood"]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_labelled_row(&["mozart", "brisk"]).unwrap();
        b.push_labelled_row(&["beethoven", "pastoral"]).unwrap();
        b.push_labelled_row(&["mozart", "pastoral"]).unwrap();
        let t = b.finish();
        assert_eq!(t.len(), 3);
        // "mozart" interned once on dim 0.
        assert_eq!(t.value(ObjectId(0), DimId(0)), t.value(ObjectId(2), DimId(0)));
        assert_eq!(t.display_row(ObjectId(1)), "(beethoven, pastoral)");
        assert_eq!(t.distinct_in_column(DimId(0)), 2);
    }

    #[test]
    fn head_truncates_deterministically() {
        let t = small();
        let h = t.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.row(ObjectId(1)), t.row(ObjectId(1)));
        assert_eq!(t.head(10).len(), 3);
    }

    #[test]
    fn append_and_remove_are_copy_on_write() {
        let t = small();
        let grown = t.with_row_appended(&[ValueId(7), ValueId(8)]).unwrap();
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.row(ObjectId(3)), vec![ValueId(7), ValueId(8)]);
        // Original untouched.
        assert_eq!(t.len(), 3);
        assert!(matches!(
            t.with_row_appended(&[ValueId(1)]),
            Err(CoreError::DimensionMismatch { .. })
        ));

        let shrunk = grown.with_row_removed(ObjectId(1)).unwrap();
        assert_eq!(shrunk.len(), 3);
        assert_eq!(shrunk.row(ObjectId(0)), t.row(ObjectId(0)));
        assert_eq!(shrunk.row(ObjectId(1)), t.row(ObjectId(2)));
        assert_eq!(shrunk.row(ObjectId(2)), vec![ValueId(7), ValueId(8)]);
        assert!(matches!(
            shrunk.with_row_removed(ObjectId(3)),
            Err(CoreError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn distinct_counts_per_column() {
        let t = small();
        assert_eq!(t.distinct_in_column(DimId(0)), 2);
        assert_eq!(t.distinct_in_column(DimId(1)), 2);
    }
}
