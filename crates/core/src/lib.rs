//! # presky-core — data model for skyline probability over uncertain preferences
//!
//! This crate implements the data model of *"Skyline Probability over
//! Uncertain Preferences"* (Q. Zhang, P. Ye, X. Lin, Y. Zhang, EDBT 2013):
//! objects with fixed **categorical** attribute values whose pairwise value
//! *preferences* are uncertain — `Pr(a ≺ b) + Pr(b ≺ a) ≤ 1`, the slack
//! being incomparability.
//!
//! The central export is [`coins::CoinView`]: the reduction of a single
//! object's skyline-probability instance to independent Bernoulli *coins*
//! (one per distinct foreign value per dimension) and *attackers*
//! (conjunctions of coins, one per competing object). All exact and
//! approximate algorithms in the companion crates (`presky-exact`,
//! `presky-approx`) consume this view; the dependence between object
//! dominance events — the phenomenon the paper is about — is exactly coin
//! sharing between attackers.
//!
//! ## Layout
//!
//! * [`types`] — `DimId` / `ValueId` / `ObjectId` newtypes.
//! * [`schema`], [`table`] — categorical schemas, dictionaries and
//!   column-major object tables.
//! * [`preference`] — the [`preference::PreferenceModel`] trait and its
//!   implementations (explicit tables, hash-seeded models for large spaces,
//!   degenerate certain orders) plus RNG-driven generation.
//! * [`dominance`] — `Pr(Qi ≺ O)` (Equation 2) and realized-world dominance.
//! * [`world`] — possible worlds: sampling and exhaustive enumeration.
//! * [`coins`] — the reduced kernel described above.
//! * [`batch`] — shared per-table indexes assembling many coin views with
//!   no per-target hashing (the all-objects query path).
//! * [`epoch`] — MVCC snapshots for live datasets: writers derive the next
//!   [`epoch::DatasetEpoch`] by copy-on-write, readers pin one via
//!   [`epoch::SnapshotView`] so concurrent writes never alter a value
//!   mid-request.
//! * [`bitworlds`] — the bit-parallel possible-world kernel: 64 worlds per
//!   machine word (multi-word SIMD lanes widen this to 256+ per step),
//!   bit-sliced Bernoulli masks, counter-based seeding.
//! * [`pool`] — thread-count resolution and the shared [`pool::ThreadBudget`]
//!   token pot that keeps object-level and within-component parallelism
//!   from oversubscribing one machine.
//!
//! ## Quick example
//!
//! ```
//! use presky_core::prelude::*;
//!
//! // The Observation of Section 1: P1=(α,s), P2=(α,t), P3=(β,t), all
//! // pairwise value preferences one half.
//! let table = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
//! let prefs = TablePreferences::with_default(PrefPair::half());
//!
//! // Pr(P2 ≺ P1) = 1/2, Pr(P3 ≺ P1) = 1/4.
//! assert_eq!(pr_dominates(&table, &prefs, ObjectId(1), ObjectId(0)), 0.5);
//! assert_eq!(pr_dominates(&table, &prefs, ObjectId(2), ObjectId(0)), 0.25);
//!
//! // P2 and P3 share the value t, hence share a coin: their dominance
//! // events over P1 are dependent.
//! let view = CoinView::build(&table, &prefs, ObjectId(0)).unwrap();
//! assert_eq!(view.n_attackers(), 2);
//! assert_eq!(view.n_coins(), 2);
//! ```

#![warn(missing_docs)]
// Unsafe is denied everywhere except the one `#[allow]`-scoped module that
// wraps the AVX2 `std::arch` kernel path behind runtime feature detection
// (`bitworlds::avx2`). Everything else stays safe Rust.
#![deny(unsafe_code)]

pub mod batch;
pub mod bitworlds;
pub mod coins;
pub mod dominance;
pub mod epoch;
pub mod error;
pub mod pool;
pub mod preference;
pub mod schema;
pub mod table;
pub mod types;
pub mod world;

pub use pool::num_threads;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::batch::{BatchCoinContext, BatchScratch};
    pub use crate::bitworlds::{
        bernoulli_mask, bernoulli_mask_pair, block_lane_mask, normalize_lane_words,
        superblock_lane_mask, survivors_block, survivors_block_antithetic, survivors_wide,
        survivors_wide_antithetic, threshold, BlockKey, BlockScratch, PlaneRng, WideScratch,
        DEFAULT_LANE_WORDS,
    };
    pub use crate::coins::{Attacker, CoinKey, CoinRemap, CoinView, SYNTHETIC_SOURCE};
    pub use crate::dominance::{differing_dims, dominates_in_world, pr_dominates};
    pub use crate::epoch::{DatasetEpoch, SnapshotView, TouchedCoin, WriteEffects};
    pub use crate::error::{CoreError, Result};
    pub use crate::pool::{num_threads, ThreadBudget, ThreadLease};
    pub use crate::preference::{
        generate_table_preferences, Ballot, BradleyTerry, DeterministicOrder, ElicitationBuilder,
        OverlayPreferences, PairLaw, PrefDistribution, PrefPair, PreferenceModel,
        SeededPreferences, TablePreferences, TablePreferencesBuilder, VoteTally,
    };
    pub use crate::schema::{Dictionary, Dimension, Schema};
    pub use crate::table::{Table, TableBuilder};
    pub use crate::types::{DimId, ObjectId, ValueId};
    pub use crate::world::{
        for_each_world, relevant_pairs_all, relevant_pairs_for_target, sample_world, PairId,
        Relation, World,
    };
}
