//! The *coin view*: the reduced combinatorial kernel of `sky(O)`.
//!
//! For a fixed target `O`, the only uncertain quantities that matter are
//! the pairwise preferences between `O.j` and each distinct foreign value
//! `v ≠ O.j` occurring on dimension `j`. Each such pair is an independent
//! Bernoulli *coin* that "wins" (realizes `v ≺ O.j`) with probability
//! `Pr(v ≺ O.j)` — losing merges the `O.j ≺ v` and incomparable outcomes,
//! which are indistinguishable for dominance over `O`.
//!
//! Every other object `Qi` becomes an *attacker*: the conjunction of the
//! coins of its differing dimensions. `Qi ≺ O` iff all of `Qi`'s coins win,
//! and
//!
//! ```text
//! sky(O) = Pr( no attacker has all of its coins winning ).
//! ```
//!
//! This is precisely the satisfiability probability of the complement of a
//! *positive DNF* formula whose literals are coins and whose clauses are
//! attackers — the structure behind the paper's #P-completeness reduction
//! (Theorem 1). The correlation between dominance events that breaks the
//! independence assumption of Sacharidis et al. is simply clause overlap:
//! two attackers sharing a coin are dependent, value-disjoint attackers are
//! independent.
//!
//! All algorithm crates (`presky-exact`, `presky-approx`) operate on this
//! view; absorption is clause-subset removal and partition is connected
//! components of the clause-overlap graph, both implemented in
//! `presky-exact`.

use std::collections::HashMap;

use crate::error::{check_probability, CoreError, Result};
use crate::preference::PreferenceModel;
use crate::table::Table;
use crate::types::{DimId, ObjectId, ValueId};

/// Identity of a coin: the foreign value and the dimension on which it is
/// compared against the target's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoinKey {
    /// Dimension of the comparison.
    pub dim: DimId,
    /// The foreign value compared against the target's value on `dim`.
    pub value: ValueId,
}

/// One attacker: a conjunction of coins, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Attacker {
    /// Sorted, deduplicated coin indices whose joint win means domination.
    pub coins: Vec<u32>,
    /// Row of the originating object in the source table, when built from a
    /// table ([`ObjectId(u32::MAX)`](ObjectId) marks synthetic attackers).
    pub source: ObjectId,
}

/// Synthetic provenance marker for attackers not born from a table row.
pub const SYNTHETIC_SOURCE: ObjectId = ObjectId(u32::MAX);

/// The reduced instance on which every `sky(O)` algorithm operates.
#[derive(Debug, Clone, PartialEq)]
pub struct CoinView {
    pub(crate) coin_prob: Vec<f64>,
    pub(crate) coin_key: Vec<Option<CoinKey>>,
    pub(crate) attackers: Vec<Attacker>,
}

impl CoinView {
    /// Build the coin view of `sky(target)` over `table` under `prefs`.
    ///
    /// Validates the target index and the no-duplicates assumption. Coins
    /// are interned per distinct `(dim, value)` so that attackers sharing a
    /// value share a coin — the source of event dependence.
    pub fn build<M: PreferenceModel>(table: &Table, prefs: &M, target: ObjectId) -> Result<Self> {
        table.validate_for_target(target)?;
        let d = table.dimensionality();
        let mut interner: HashMap<CoinKey, u32> = HashMap::new();
        let mut coin_prob: Vec<f64> = Vec::new();
        let mut coin_key: Vec<Option<CoinKey>> = Vec::new();
        let mut attackers: Vec<Attacker> = Vec::with_capacity(table.len().saturating_sub(1));

        for obj in table.objects() {
            if obj == target {
                continue;
            }
            let mut coins = Vec::with_capacity(d);
            for j in (0..d).map(DimId::from) {
                let (qv, ov) = (table.value(obj, j), table.value(target, j));
                if qv == ov {
                    continue;
                }
                let key = CoinKey { dim: j, value: qv };
                let id = *interner.entry(key).or_insert_with(|| {
                    let id = coin_prob.len() as u32;
                    coin_prob.push(prefs.pr_strict(j, qv, ov));
                    coin_key.push(Some(key));
                    id
                });
                coins.push(id);
            }
            // A no-coin attacker would be a duplicate of the target, which
            // validate_for_target has excluded.
            debug_assert!(!coins.is_empty());
            coins.sort_unstable();
            attackers.push(Attacker { coins, source: obj });
        }
        for &p in &coin_prob {
            check_probability(p, "coin probability").map_err(|_| {
                CoreError::InvalidProbability { value: p, context: "preference model output" }
            })?;
        }
        Ok(Self { coin_prob, coin_key, attackers })
    }

    /// Build a synthetic view from raw parts — the entry point for the
    /// positive-DNF reduction and for property tests.
    ///
    /// Coin lists are sorted and deduplicated; empty clauses are rejected
    /// (an empty conjunction would dominate with certainty, which no
    /// distinct object can).
    pub fn from_parts(coin_prob: Vec<f64>, clauses: Vec<Vec<u32>>) -> Result<Self> {
        for &p in &coin_prob {
            check_probability(p, "coin probability")?;
        }
        let m = coin_prob.len() as u32;
        let mut attackers = Vec::with_capacity(clauses.len());
        for mut coins in clauses {
            coins.sort_unstable();
            coins.dedup();
            if coins.is_empty() {
                return Err(CoreError::DuplicateObject {
                    first: SYNTHETIC_SOURCE,
                    second: SYNTHETIC_SOURCE,
                });
            }
            if let Some(&bad) = coins.iter().find(|&&c| c >= m) {
                return Err(CoreError::UnknownValue {
                    dim: DimId(0),
                    label: format!("coin index {bad} out of range ({m} coins)"),
                });
            }
            attackers.push(Attacker { coins, source: SYNTHETIC_SOURCE });
        }
        let coin_key = vec![None; coin_prob.len()];
        Ok(Self { coin_prob, coin_key, attackers })
    }

    /// Number of attackers (`n` in the paper).
    pub fn n_attackers(&self) -> usize {
        self.attackers.len()
    }

    /// Number of distinct coins (distinct foreign values across dimensions).
    pub fn n_coins(&self) -> usize {
        self.coin_prob.len()
    }

    /// Win probability of coin `k`.
    #[inline]
    pub fn coin_prob(&self, k: u32) -> f64 {
        self.coin_prob[k as usize]
    }

    /// All coin probabilities.
    pub fn coin_probs(&self) -> &[f64] {
        &self.coin_prob
    }

    /// Identity of coin `k` (None for synthetic views).
    pub fn coin_key(&self, k: u32) -> Option<CoinKey> {
        self.coin_key[k as usize]
    }

    /// The attackers.
    pub fn attackers(&self) -> &[Attacker] {
        &self.attackers
    }

    /// Coins of attacker `i`.
    #[inline]
    pub fn attacker_coins(&self, i: usize) -> &[u32] {
        &self.attackers[i].coins
    }

    /// Source row of attacker `i`.
    pub fn source(&self, i: usize) -> ObjectId {
        self.attackers[i].source
    }

    /// `Pr(e_i)` — the probability attacker `i` dominates the target
    /// (Equation 2: the product of its coin probabilities).
    pub fn attacker_prob(&self, i: usize) -> f64 {
        self.attackers[i].coins.iter().map(|&k| self.coin_prob(k)).product()
    }

    /// Attacker indices sorted by descending `Pr(e_i)` — the checking
    /// sequence of Algorithm 2 ("the object with highest probability of
    /// dominating O is always checked first").
    pub fn checking_sequence(&self) -> Vec<usize> {
        let mut order = Vec::new();
        self.checking_sequence_into(&mut Vec::new(), &mut order);
        order
    }

    /// Allocation-reusing form of [`checking_sequence`](Self::checking_sequence):
    /// writes the order into `order`, using `probs` as scratch.
    pub fn checking_sequence_into(&self, probs: &mut Vec<f64>, order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..self.n_attackers());
        probs.clear();
        probs.extend((0..self.n_attackers()).map(|i| self.attacker_prob(i)));
        // Stable sort by descending dominance probability; `total_cmp` is
        // total (no NaN panic path) and agrees with `partial_cmp` on these
        // products of [0, 1] coins.
        order.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
    }

    /// Restrict the view to a subset of attackers, dropping coins that no
    /// surviving attacker references and compacting coin indices.
    ///
    /// Used by the partition technique (per-component sub-instances) and by
    /// the A1 approximation (top-k attackers).
    pub fn restrict(&self, attacker_ids: &[usize]) -> CoinView {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut coin_prob = Vec::new();
        let mut coin_key = Vec::new();
        let mut attackers = Vec::with_capacity(attacker_ids.len());
        for &i in attacker_ids {
            let a = &self.attackers[i];
            let coins: Vec<u32> = a
                .coins
                .iter()
                .map(|&k| {
                    *remap.entry(k).or_insert_with(|| {
                        let id = coin_prob.len() as u32;
                        coin_prob.push(self.coin_prob[k as usize]);
                        coin_key.push(self.coin_key[k as usize]);
                        id
                    })
                })
                .collect();
            // Remapped ids preserve relative order of first appearance, not
            // numeric order — restore sortedness.
            let mut coins = coins;
            coins.sort_unstable();
            attackers.push(Attacker { coins, source: a.source });
        }
        CoinView { coin_prob, coin_key, attackers }
    }

    /// An empty view (zero coins, zero attackers, `sky = 1`), intended as a
    /// reusable output buffer for [`restrict_into`](Self::restrict_into) and
    /// the batch assembly path.
    pub fn empty() -> CoinView {
        CoinView { coin_prob: Vec::new(), coin_key: Vec::new(), attackers: Vec::new() }
    }

    /// Allocation-reusing form of [`restrict`](Self::restrict): writes the
    /// sub-view into `out`, keeping `out`'s buffers (including each
    /// attacker's coin list) warm across calls. Produces results
    /// bit-identical to `restrict` — coins are compacted in the same
    /// first-appearance order.
    pub fn restrict_into(&self, attacker_ids: &[usize], remap: &mut CoinRemap, out: &mut CoinView) {
        let epoch = remap.begin(self.n_coins());
        out.coin_prob.clear();
        out.coin_key.clear();
        out.attackers.truncate(attacker_ids.len());
        while out.attackers.len() < attacker_ids.len() {
            out.attackers.push(Attacker { coins: Vec::new(), source: SYNTHETIC_SOURCE });
        }
        for (slot, &i) in attacker_ids.iter().enumerate() {
            let a = &self.attackers[i];
            let dst = &mut out.attackers[slot];
            dst.coins.clear();
            for &k in &a.coins {
                let ku = k as usize;
                if remap.stamp[ku] != epoch {
                    remap.stamp[ku] = epoch;
                    remap.map[ku] = out.coin_prob.len() as u32;
                    out.coin_prob.push(self.coin_prob[ku]);
                    out.coin_key.push(self.coin_key[ku]);
                }
                dst.coins.push(remap.map[ku]);
            }
            dst.coins.sort_unstable();
            dst.source = a.source;
        }
    }

    /// Allocating convenience form of
    /// [`restrict_canonical_into`](Self::restrict_canonical_into). Returns
    /// `None` when the view has synthetic (key-less) coins.
    pub fn restrict_canonical(&self, attacker_ids: &[usize]) -> Option<CoinView> {
        let mut out = CoinView::empty();
        self.restrict_canonical_into(attacker_ids, &mut CanonScratch::default(), &mut out)
            .then_some(out)
    }

    /// Like [`restrict_into`](Self::restrict_into), but relabel attackers
    /// and coins into a *canonical* order determined only by the
    /// sub-instance's content, not by the order of `attacker_ids` or by the
    /// coin ids of `self`:
    ///
    /// * each attacker is identified by its sorted list of
    ///   `(dim, value, prob_bits)` coin triples;
    /// * attackers are sorted lexicographically by that list;
    /// * coins are renumbered by first appearance in that canonical
    ///   traversal (each attacker's triples visited in sorted order), and
    ///   every coin list is then re-sorted by the new ids.
    ///
    /// Two groups with the same content therefore produce byte-identical
    /// sub-views (up to attacker provenance), so any deterministic solver
    /// run on them returns bit-identical results — the foundation of the
    /// cross-target component cache. Returns `false` (leaving `out` in an
    /// unspecified but valid state) when some referenced coin has no
    /// [`CoinKey`] (synthetic views), which callers treat as "not
    /// canonicalizable — fall back to `restrict_into`".
    pub fn restrict_canonical_into(
        &self,
        attacker_ids: &[usize],
        scratch: &mut CanonScratch,
        out: &mut CoinView,
    ) -> bool {
        let n = attacker_ids.len();
        scratch.triples.iter_mut().for_each(Vec::clear);
        while scratch.triples.len() < n {
            scratch.triples.push(Vec::new());
        }
        for (slot, &i) in attacker_ids.iter().enumerate() {
            let t = &mut scratch.triples[slot];
            t.clear();
            for &k in &self.attackers[i].coins {
                let Some(key) = self.coin_key[k as usize] else { return false };
                t.push((key.dim.0, key.value.0, self.coin_prob[k as usize].to_bits(), k));
            }
            // Sort by the (dim, value, prob_bits) identity; the trailing old
            // coin id is determined by (dim, value) and never breaks a tie.
            t.sort_unstable();
        }
        scratch.order.clear();
        scratch.order.extend(0..n);
        let triples = &scratch.triples;
        // Widest attackers first: the DFS covered-attacker prune skips a
        // cell when a *later* attacker's coins fall inside the current
        // union, so building big unions early maximises cancellations.
        // The key is content-only, so the order — and hence the signature
        // and the solve bits — stays invariant under enumeration order.
        // Stable, so groups containing content-identical attackers (which
        // are interchangeable for any solve) still map deterministically.
        scratch.order.sort_by(|&a, &b| {
            triples[b].len().cmp(&triples[a].len()).then_with(|| triples[a].cmp(&triples[b]))
        });

        let epoch = scratch.remap.begin(self.n_coins());
        out.coin_prob.clear();
        out.coin_key.clear();
        out.attackers.truncate(n);
        while out.attackers.len() < n {
            out.attackers.push(Attacker { coins: Vec::new(), source: SYNTHETIC_SOURCE });
        }
        for (slot, &s) in scratch.order.iter().enumerate() {
            let dst = &mut out.attackers[slot];
            dst.coins.clear();
            for &(dim, value, bits, k) in &scratch.triples[s] {
                let ku = k as usize;
                if scratch.remap.stamp[ku] != epoch {
                    scratch.remap.stamp[ku] = epoch;
                    scratch.remap.map[ku] = out.coin_prob.len() as u32;
                    out.coin_prob.push(f64::from_bits(bits));
                    out.coin_key.push(Some(CoinKey { dim: DimId(dim), value: ValueId(value) }));
                }
                dst.coins.push(scratch.remap.map[ku]);
            }
            dst.coins.sort_unstable();
            dst.source = self.attackers[attacker_ids[s]].source;
        }
        true
    }

    /// Drop attackers containing a zero-probability coin: they can never
    /// dominate and contribute nothing to any joint probability. Returns
    /// how many were removed.
    pub fn prune_impossible(&mut self) -> usize {
        let before = self.attackers.len();
        let coin_prob = &self.coin_prob;
        self.attackers.retain(|a| a.coins.iter().all(|&k| coin_prob[k as usize] > 0.0));
        before - self.attackers.len()
    }

    /// Whether some attacker dominates with certainty (all coins have
    /// probability one), forcing `sky = 0`.
    pub fn has_certain_attacker(&self) -> bool {
        self.attackers.iter().any(|a| a.coins.iter().all(|&k| self.coin_prob[k as usize] >= 1.0))
    }

    /// For each coin, the list of attackers referencing it (posting lists),
    /// in ascending attacker order.
    pub fn coin_postings(&self) -> Vec<Vec<u32>> {
        let mut postings = vec![Vec::new(); self.n_coins()];
        for (i, a) in self.attackers.iter().enumerate() {
            for &k in &a.coins {
                postings[k as usize].push(i as u32);
            }
        }
        postings
    }
}

/// Reusable stamped remap table for [`CoinView::restrict_into`]: old coin id
/// → compacted id, valid for the current epoch only, so clearing between
/// calls is O(1).
#[derive(Debug, Clone, Default)]
pub struct CoinRemap {
    map: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

/// Reusable working memory for
/// [`CoinView::restrict_canonical_into`]: per-attacker coin-triple lists
/// (`(dim, value, prob_bits, old_id)`), the canonical attacker order, and a
/// stamped coin remap. One per worker thread.
#[derive(Debug, Clone, Default)]
pub struct CanonScratch {
    triples: Vec<Vec<(u32, u32, u64, u32)>>,
    order: Vec<usize>,
    remap: CoinRemap,
}

impl CoinRemap {
    /// Start a fresh remap over `n_coins` coins; returns the epoch stamp.
    fn begin(&mut self, n_coins: usize) -> u32 {
        if self.map.len() < n_coins {
            self.map.resize(n_coins, 0);
            self.stamp.resize(n_coins, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{PrefPair, TablePreferences};

    /// Example 1 of the paper: O=(o1,o2), Q1=(a,b), Q2=(a,o2), Q3=(c,e),
    /// Q4=(o1,b), all preferences ½.
    /// Codes: dim0: o1=0, a=1, c=2; dim1: o2=0, b=1, e=2.
    pub(crate) fn example1() -> (Table, TablePreferences) {
        let t = Table::from_rows_raw(
            2,
            &[
                vec![0, 0], // O
                vec![1, 1], // Q1
                vec![1, 0], // Q2
                vec![2, 2], // Q3
                vec![0, 1], // Q4
            ],
        )
        .unwrap();
        (t, TablePreferences::with_default(PrefPair::half()))
    }

    #[test]
    fn example1_coin_structure() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        assert_eq!(v.n_attackers(), 4);
        // Coins: (d0,a), (d0,c), (d1,b), (d1,e) — 4 distinct foreign values.
        assert_eq!(v.n_coins(), 4);
        // Q1=(a,b) has two coins; Q2=(a,o2) one; shared coin (d0,a).
        let q1 = &v.attackers()[0];
        let q2 = &v.attackers()[1];
        assert_eq!(q1.coins.len(), 2);
        assert_eq!(q2.coins.len(), 1);
        assert!(q1.coins.contains(&q2.coins[0]), "Q1 and Q2 share the (d0,a) coin");
        // Dominance probabilities (Eq. 2).
        assert_eq!(v.attacker_prob(0), 0.25); // Q1
        assert_eq!(v.attacker_prob(1), 0.5); // Q2
        assert_eq!(v.attacker_prob(2), 0.25); // Q3
        assert_eq!(v.attacker_prob(3), 0.5); // Q4
    }

    #[test]
    fn checking_sequence_orders_q2_q4_first() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        let seq = v.checking_sequence();
        // "we always check O against Q2 and Q4 first, then Q1 and Q3".
        let first_two: Vec<ObjectId> = seq[..2].iter().map(|&i| v.source(i)).collect();
        assert!(first_two.contains(&ObjectId(2)));
        assert!(first_two.contains(&ObjectId(4)));
    }

    #[test]
    fn build_rejects_duplicates_and_bad_targets() {
        let t = Table::from_rows_raw(1, &[vec![0], vec![1], vec![0]]).unwrap();
        let p = TablePreferences::with_default(PrefPair::half());
        assert!(matches!(
            CoinView::build(&t, &p, ObjectId(0)),
            Err(CoreError::DuplicateObject { .. })
        ));
        let t2 = Table::from_rows_raw(1, &[vec![0], vec![1]]).unwrap();
        assert!(matches!(
            CoinView::build(&t2, &p, ObjectId(9)),
            Err(CoreError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn from_parts_validates() {
        assert!(CoinView::from_parts(vec![0.5, 1.5], vec![vec![0]]).is_err());
        assert!(CoinView::from_parts(vec![0.5], vec![vec![]]).is_err());
        assert!(CoinView::from_parts(vec![0.5], vec![vec![1]]).is_err());
        let v = CoinView::from_parts(vec![0.5, 0.25], vec![vec![1, 0, 1]]).unwrap();
        assert_eq!(v.attacker_coins(0), &[0, 1]);
        assert_eq!(v.attacker_prob(0), 0.125);
        assert_eq!(v.coin_key(0), None);
        assert_eq!(v.source(0), SYNTHETIC_SOURCE);
    }

    #[test]
    fn restrict_compacts_coins() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        // Keep Q2 (1 coin) and Q3 (2 coins).
        let r = v.restrict(&[1, 2]);
        assert_eq!(r.n_attackers(), 2);
        assert_eq!(r.n_coins(), 3);
        assert_eq!(r.attacker_prob(0), 0.5);
        assert_eq!(r.attacker_prob(1), 0.25);
        assert_eq!(r.source(0), ObjectId(2));
        for a in r.attackers() {
            assert!(a.coins.windows(2).all(|w| w[0] < w[1]), "coins sorted");
        }
    }

    #[test]
    fn restrict_into_matches_restrict_bit_for_bit() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        let mut remap = CoinRemap::default();
        let mut out = CoinView::empty();
        for keep in [vec![1usize, 2], vec![0, 3], vec![2], vec![0, 1, 2, 3]] {
            let fresh = v.restrict(&keep);
            v.restrict_into(&keep, &mut remap, &mut out);
            assert_eq!(fresh, out, "subset {keep:?}");
        }
        // Shrinking reuse: a smaller restriction after a larger one must not
        // leak stale attackers or coins.
        v.restrict_into(&[0, 1, 2, 3], &mut remap, &mut out);
        v.restrict_into(&[2], &mut remap, &mut out);
        assert_eq!(v.restrict(&[2]), out);
    }

    #[test]
    fn restrict_canonical_is_permutation_invariant() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        let a = v.restrict_canonical(&[0, 1, 2, 3]).unwrap();
        let b = v.restrict_canonical(&[3, 1, 0, 2]).unwrap();
        assert_eq!(a, b, "canonical form is independent of enumeration order");
        // The canonical sub-view is a relabeling of the plain restriction:
        // same coin multiset, same attacker count.
        let plain = v.restrict(&[0, 1, 2, 3]);
        let mut ours: Vec<u64> = a.coin_probs().iter().map(|p| p.to_bits()).collect();
        let mut theirs: Vec<u64> = plain.coin_probs().iter().map(|p| p.to_bits()).collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs);
        // Key-less (synthetic) views cannot be canonicalized.
        let s = CoinView::from_parts(vec![0.5], vec![vec![0]]).unwrap();
        assert!(s.restrict_canonical(&[0]).is_none());
    }

    #[test]
    fn checking_sequence_into_matches_allocating_form() {
        let (t, p) = example1();
        let v = CoinView::build(&t, &p, ObjectId(0)).unwrap();
        let mut probs = Vec::new();
        let mut order = Vec::new();
        v.checking_sequence_into(&mut probs, &mut order);
        assert_eq!(order, v.checking_sequence());
    }

    #[test]
    fn prune_impossible_drops_zero_coin_attackers() {
        let mut v = CoinView::from_parts(vec![0.0, 0.5], vec![vec![0, 1], vec![1]]).unwrap();
        assert_eq!(v.prune_impossible(), 1);
        assert_eq!(v.n_attackers(), 1);
        assert_eq!(v.attacker_coins(0), &[1]);
    }

    #[test]
    fn certain_attacker_detection() {
        let v = CoinView::from_parts(vec![1.0, 0.5], vec![vec![0]]).unwrap();
        assert!(v.has_certain_attacker());
        let v2 = CoinView::from_parts(vec![1.0, 0.5], vec![vec![0, 1]]).unwrap();
        assert!(!v2.has_certain_attacker());
    }

    #[test]
    fn postings_invert_attacker_lists() {
        let v = CoinView::from_parts(vec![0.5; 3], vec![vec![0, 1], vec![1, 2], vec![2]]).unwrap();
        let p = v.coin_postings();
        assert_eq!(p[0], vec![0]);
        assert_eq!(p[1], vec![0, 1]);
        assert_eq!(p[2], vec![1, 2]);
    }
}
