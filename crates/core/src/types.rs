//! Strongly-typed identifiers for the categorical data model.
//!
//! The paper's objects live in a `d`-dimensional space whose attribute
//! values are *categorical* — the only structure on values is the uncertain
//! preference relation, never arithmetic. We therefore keep identifiers as
//! opaque newtypes so that a dimension index can never be confused with a
//! value code or an object row.

use std::fmt;

/// Index of a dimension (attribute) of the space, `0 ..= d-1`.
///
/// The paper writes `O.j` for the value of object `O` on the `j`-th
/// dimension; `DimId` is that `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimId(pub u32);

impl DimId {
    /// The dimension index as a `usize`, for indexing column vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<usize> for DimId {
    #[inline]
    fn from(i: usize) -> Self {
        DimId(i as u32)
    }
}

/// Code of a categorical value *within one dimension*.
///
/// Value codes are scoped per dimension: `ValueId(3)` on the `parents`
/// attribute of the Nursery data set is unrelated to `ValueId(3)` on
/// `health`. Preference models are queried with the owning [`DimId`]
/// alongside the two value codes for exactly this reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The value code as a `usize`, for indexing dictionaries.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for ValueId {
    #[inline]
    fn from(i: usize) -> Self {
        ValueId(i as u32)
    }
}

/// Row index of an object in a [`crate::table::Table`].
///
/// The paper distinguishes the *target* object `O` from the other objects
/// `Q_1 … Q_n`; in this library all of them are rows of one table and the
/// target is designated by its `ObjectId` at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The row index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<usize> for ObjectId {
    #[inline]
    fn from(i: usize) -> Self {
        ObjectId(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_round_trip_through_usize() {
        assert_eq!(DimId::from(7).index(), 7);
        assert_eq!(ValueId::from(42).index(), 42);
        assert_eq!(ObjectId::from(0).index(), 0);
    }

    #[test]
    fn display_forms_are_compact() {
        assert_eq!(DimId(3).to_string(), "d3");
        assert_eq!(ValueId(9).to_string(), "v9");
        assert_eq!(ObjectId(1).to_string(), "o1");
    }

    #[test]
    fn ordering_follows_numeric_code() {
        assert!(DimId(1) < DimId(2));
        assert!(ValueId(0) < ValueId(1));
        assert!(ObjectId(10) > ObjectId(9));
    }
}
