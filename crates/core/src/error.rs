//! Typed errors for the data model and preference layer.

use std::fmt;

use crate::types::{DimId, ObjectId, ValueId};

/// Errors produced while building or validating tables, preference models
/// and the reduced coin view.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A row was pushed whose arity differs from the schema dimensionality.
    DimensionMismatch {
        /// Dimensionality declared by the schema.
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
    /// A probability outside `[0, 1]`, or `NaN`, was supplied.
    InvalidProbability {
        /// The offending number.
        value: f64,
        /// Where it came from (e.g. `"Pr(a ≺ b)"`).
        context: &'static str,
    },
    /// A preference pair whose two directions sum to more than one.
    ///
    /// The paper's model requires `Pr(a ≺ b) + Pr(b ≺ a) ≤ 1`; the slack is
    /// the probability that the two values are incomparable.
    PairMassExceedsOne {
        /// Dimension of the pair.
        dim: DimId,
        /// First value.
        a: ValueId,
        /// Second value.
        b: ValueId,
        /// `Pr(a ≺ b) + Pr(b ≺ a)` as supplied.
        total: f64,
    },
    /// A preference was declared between a value and itself.
    ///
    /// Identical values are *equally preferred with certainty* in the model
    /// (`Pr(α ⪯ β) = 1`); a self-pair entry would contradict that.
    SelfPreference {
        /// Dimension of the pair.
        dim: DimId,
        /// The value paired with itself.
        value: ValueId,
    },
    /// Two identical rows were found.
    ///
    /// Section 2 of the paper assumes no duplicate objects ("For reasons of
    /// simplicity, we assume no duplicate objects in D"); dominance would
    /// otherwise be ill-defined on the duplicated pair.
    DuplicateObject {
        /// The earlier of the two identical rows.
        first: ObjectId,
        /// The later duplicate.
        second: ObjectId,
    },
    /// The designated target object is out of range.
    TargetOutOfRange {
        /// The requested target.
        target: ObjectId,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A table with zero dimensions was requested.
    EmptySchema,
    /// A value string was not found in a dimension dictionary.
    UnknownValue {
        /// Dimension searched.
        dim: DimId,
        /// The label that failed to resolve.
        label: String,
    },
    /// A dictionary-backed operation was attempted on a schema without
    /// dictionaries (raw numeric tables).
    NoDictionary {
        /// Dimension lacking a dictionary.
        dim: DimId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema dimensionality {expected}")
            }
            CoreError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} for {context}: must lie in [0, 1]")
            }
            CoreError::PairMassExceedsOne { dim, a, b, total } => write!(
                f,
                "preference pair ({a}, {b}) on {dim} has total mass {total} > 1 \
                 (Pr(a≺b) + Pr(b≺a) must not exceed 1)"
            ),
            CoreError::SelfPreference { dim, value } => write!(
                f,
                "preference declared between {value} and itself on {dim}; identical values \
                 are equally preferred with certainty"
            ),
            CoreError::DuplicateObject { first, second } => {
                write!(
                    f,
                    "objects {first} and {second} are identical; the model assumes no duplicates"
                )
            }
            CoreError::TargetOutOfRange { target, rows } => {
                write!(f, "target object {target} out of range for table with {rows} rows")
            }
            CoreError::EmptySchema => write!(f, "a table must have at least one dimension"),
            CoreError::UnknownValue { dim, label } => {
                write!(f, "value {label:?} not present in the dictionary of {dim}")
            }
            CoreError::NoDictionary { dim } => {
                write!(
                    f,
                    "{dim} has no dictionary; build the table with labelled values to use labels"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the workspace.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Validate that `p` is a probability, tagging errors with `context`.
pub fn check_probability(p: f64, context: &'static str) -> Result<f64> {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        Err(CoreError::InvalidProbability { value: p, context })
    } else {
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation_accepts_bounds() {
        assert_eq!(check_probability(0.0, "t").unwrap(), 0.0);
        assert_eq!(check_probability(1.0, "t").unwrap(), 1.0);
        assert_eq!(check_probability(0.5, "t").unwrap(), 0.5);
    }

    #[test]
    fn probability_validation_rejects_nan_and_out_of_range() {
        assert!(check_probability(f64::NAN, "t").is_err());
        assert!(check_probability(-0.1, "t").is_err());
        assert!(check_probability(1.1, "t").is_err());
    }

    #[test]
    fn errors_display_useful_messages() {
        let e = CoreError::PairMassExceedsOne {
            dim: DimId(0),
            a: ValueId(1),
            b: ValueId(2),
            total: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("1.5"));
        assert!(msg.contains("d0"));
    }
}
