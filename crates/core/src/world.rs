//! Possible worlds: realized assignments of uncertain preferences.
//!
//! The naive exact method of Section 4.1 (Equation 8) enumerates *sample
//! spaces*: every combination of outcomes of the relevant preference pairs,
//! each weighted by the product of its pair probabilities (pairs are
//! mutually independent in the model). This module provides the world
//! representation, exhaustive enumeration with zero-probability pruning,
//! and forward sampling — the substrate for the naive algorithm, for the
//! Monte-Carlo ground truth in tests, and for the certain-skyline oracle.

use std::collections::HashMap;

use rand::Rng;

use crate::preference::PreferenceModel;
use crate::table::Table;
use crate::types::{DimId, ObjectId, ValueId};

/// A canonical (unordered) value pair on one dimension; `lo < hi` by code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairId {
    /// Owning dimension.
    pub dim: DimId,
    /// Smaller value code.
    pub lo: ValueId,
    /// Larger value code.
    pub hi: ValueId,
}

impl PairId {
    /// Build the canonical pair for `(a, b)`; the two values must differ.
    pub fn new(dim: DimId, a: ValueId, b: ValueId) -> Self {
        assert_ne!(a, b, "a preference pair needs two distinct values");
        if a.0 < b.0 {
            Self { dim, lo: a, hi: b }
        } else {
            Self { dim, lo: b, hi: a }
        }
    }
}

/// The realized outcome of one preference pair, in canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lo ≺ hi` realized.
    LoWins,
    /// `hi ≺ lo` realized.
    HiWins,
    /// The two values turned out incomparable.
    Incomparable,
}

/// One realized world: a (partial) map from pairs to outcomes.
///
/// Pairs absent from the map are treated as incomparable — for `sky`
/// computations only "wins" matter, so the partial map realized by lazy
/// sampling is always sufficient.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct World {
    outcomes: HashMap<PairId, Relation>,
}

impl World {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the outcome of a pair.
    pub fn set(&mut self, pair: PairId, rel: Relation) {
        self.outcomes.insert(pair, rel);
    }

    /// The recorded outcome, if any.
    pub fn get(&self, pair: PairId) -> Option<Relation> {
        self.outcomes.get(&pair).copied()
    }

    /// Whether `a ≺ b` on `dim` is realized in this world.
    ///
    /// Identical values are never *strictly* preferred; unrecorded pairs
    /// count as not-preferred (incomparable).
    pub fn prefers(&self, dim: DimId, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return false;
        }
        let pair = PairId::new(dim, a, b);
        match self.get(pair) {
            Some(Relation::LoWins) => pair.lo == a,
            Some(Relation::HiWins) => pair.hi == a,
            _ => false,
        }
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcome has been recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// The pairs relevant to `sky(target)`: every distinct `(dim, v)` with `v`
/// occurring on `dim` in some other row and differing from the target's
/// value, paired with the target's value on that dimension.
///
/// This is exactly the set of "coins" of the reduced instance — computing
/// `sky(O)` never consults any other preference.
pub fn relevant_pairs_for_target(table: &Table, target: ObjectId) -> Vec<PairId> {
    let mut pairs = Vec::new();
    for j in (0..table.dimensionality()).map(DimId::from) {
        let ov = table.value(target, j);
        let mut seen: Vec<ValueId> = table.column(j).iter().copied().filter(|&v| v != ov).collect();
        seen.sort_unstable();
        seen.dedup();
        for v in seen {
            pairs.push(PairId::new(j, v, ov));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// The pairs relevant to deciding dominance between *every ordered pair* of
/// rows: the union over object pairs of their per-dimension value pairs.
///
/// Used by the all-objects naive skyline oracle. Quadratic in the row count
/// — strictly a small-instance tool.
pub fn relevant_pairs_all(table: &Table) -> Vec<PairId> {
    let mut pairs = Vec::new();
    let n = table.len();
    for a in 0..n {
        for b in (a + 1)..n {
            for j in (0..table.dimensionality()).map(DimId::from) {
                let (va, vb) =
                    (table.value(ObjectId::from(a), j), table.value(ObjectId::from(b), j));
                if va != vb {
                    pairs.push(PairId::new(j, va, vb));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Sample a full world over `pairs` by independent draws.
pub fn sample_world<M: PreferenceModel, R: Rng>(pairs: &[PairId], prefs: &M, rng: &mut R) -> World {
    let mut w = World::new();
    for &pair in pairs {
        let f = prefs.pr_strict(pair.dim, pair.lo, pair.hi);
        let b = prefs.pr_strict(pair.dim, pair.hi, pair.lo);
        let u: f64 = rng.random();
        let rel = if u < f {
            Relation::LoWins
        } else if u < f + b {
            Relation::HiWins
        } else {
            Relation::Incomparable
        };
        w.set(pair, rel);
    }
    w
}

/// Exhaustively enumerate every positive-probability world over `pairs`,
/// invoking `visit(world, probability)` for each.
///
/// Branches of probability zero are pruned, so e.g. complementary pairs
/// contribute a factor of 2 (not 3) to the world count. The world passed to
/// the visitor is reused across calls; clone it to retain it.
pub fn for_each_world<M, F>(pairs: &[PairId], prefs: &M, mut visit: F)
where
    M: PreferenceModel,
    F: FnMut(&World, f64),
{
    let mut world = World::new();
    recurse(pairs, prefs, 0, 1.0, &mut world, &mut visit);
}

fn recurse<M, F>(
    pairs: &[PairId],
    prefs: &M,
    idx: usize,
    prob: f64,
    world: &mut World,
    visit: &mut F,
) where
    M: PreferenceModel,
    F: FnMut(&World, f64),
{
    if idx == pairs.len() {
        visit(world, prob);
        return;
    }
    let pair = pairs[idx];
    let f = prefs.pr_strict(pair.dim, pair.lo, pair.hi);
    let b = prefs.pr_strict(pair.dim, pair.hi, pair.lo);
    let inc = (1.0 - f - b).max(0.0);
    for (rel, p) in [(Relation::LoWins, f), (Relation::HiWins, b), (Relation::Incomparable, inc)] {
        if p > 0.0 {
            world.set(pair, rel);
            recurse(pairs, prefs, idx + 1, prob * p, world, visit);
        }
    }
    // Leave no stale entry behind for pruned siblings at shallower depth.
    world.outcomes.remove(&pair);
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::preference::{PrefPair, SeededPreferences, TablePreferences};

    #[test]
    fn pair_canonicalisation() {
        let p1 = PairId::new(DimId(0), ValueId(5), ValueId(2));
        let p2 = PairId::new(DimId(0), ValueId(2), ValueId(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo, ValueId(2));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_pair_panics() {
        let _ = PairId::new(DimId(0), ValueId(1), ValueId(1));
    }

    #[test]
    fn world_preference_lookup_orients_correctly() {
        let mut w = World::new();
        w.set(PairId::new(DimId(0), ValueId(1), ValueId(4)), Relation::HiWins);
        assert!(w.prefers(DimId(0), ValueId(4), ValueId(1)));
        assert!(!w.prefers(DimId(0), ValueId(1), ValueId(4)));
        assert!(!w.prefers(DimId(0), ValueId(1), ValueId(1)));
        // Unrecorded pair.
        assert!(!w.prefers(DimId(1), ValueId(0), ValueId(1)));
    }

    #[test]
    fn relevant_pairs_for_target_cover_foreign_values_only() {
        // O=(0,0), Q1=(0,1), Q2=(1,1): coins are (d0: 1 vs 0), (d1: 1 vs 0).
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
        let pairs = relevant_pairs_for_target(&t, ObjectId(0));
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&PairId::new(DimId(0), ValueId(0), ValueId(1))));
        assert!(pairs.contains(&PairId::new(DimId(1), ValueId(0), ValueId(1))));
    }

    #[test]
    fn relevant_pairs_all_is_a_superset_per_object() {
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 2]]).unwrap();
        let all = relevant_pairs_all(&t);
        for obj in t.objects() {
            for p in relevant_pairs_for_target(&t, obj) {
                assert!(all.contains(&p), "{p:?} missing from all-pairs set");
            }
        }
    }

    #[test]
    fn enumeration_probabilities_sum_to_one() {
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
        let pairs = relevant_pairs_for_target(&t, ObjectId(0));
        let prefs = TablePreferences::with_default(PrefPair::half());
        let mut total = 0.0;
        let mut count = 0usize;
        for_each_world(&pairs, &prefs, |_, p| {
            total += p;
            count += 1;
        });
        assert!((total - 1.0).abs() < 1e-12);
        // Two complementary pairs -> 2 * 2 worlds (zero-mass branches pruned).
        assert_eq!(count, 4);
    }

    #[test]
    fn enumeration_includes_incomparability_when_present() {
        let t = Table::from_rows_raw(1, &[vec![0], vec![1]]).unwrap();
        let mut prefs = TablePreferences::new();
        prefs.set(DimId(0), ValueId(0), ValueId(1), 0.3, 0.3).unwrap();
        let pairs = relevant_pairs_for_target(&t, ObjectId(0));
        let mut count = 0usize;
        let mut total = 0.0;
        for_each_world(&pairs, &prefs, |_, p| {
            count += 1;
            total += p;
        });
        assert_eq!(count, 3);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_pair_probabilities() {
        let pair = PairId::new(DimId(0), ValueId(0), ValueId(1));
        let mut prefs = TablePreferences::new();
        prefs.set(DimId(0), ValueId(0), ValueId(1), 0.6, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let mut lo = 0usize;
        let mut inc = 0usize;
        for _ in 0..trials {
            match sample_world(&[pair], &prefs, &mut rng).get(pair).unwrap() {
                Relation::LoWins => lo += 1,
                Relation::Incomparable => inc += 1,
                Relation::HiWins => {}
            }
        }
        let lo_rate = lo as f64 / trials as f64;
        let inc_rate = inc as f64 / trials as f64;
        assert!((lo_rate - 0.6).abs() < 0.02, "lo rate {lo_rate}");
        assert!((inc_rate - 0.1).abs() < 0.02, "inc rate {inc_rate}");
    }

    #[test]
    fn enumeration_and_seeded_models_compose() {
        let t = Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![2, 0]]).unwrap();
        let prefs = SeededPreferences::complementary(3);
        let pairs = relevant_pairs_for_target(&t, ObjectId(0));
        let mut total = 0.0;
        for_each_world(&pairs, &prefs, |_, p| total += p);
        assert!((total - 1.0).abs() < 1e-12);
    }
}
