//! Epoch/MVCC snapshots of one live dataset.
//!
//! Every structure a query reads — the [`Table`], its [`BatchCoinContext`]
//! indexes, the preference model — is immutable. Mutability lives one
//! level up: a [`DatasetEpoch`] bundles one consistent version of all
//! three under a single epoch id, and a write produces the **next** epoch
//! by copy-on-write of only the touched structures:
//!
//! * `insert_object` / `remove_object` derive a new table and context
//!   (incrementally — see [`BatchCoinContext::with_row_appended`]) and
//!   share the preference `Arc`;
//! * `set_preference` derives a new [`OverlayPreferences`] and shares the
//!   table and context `Arc`s.
//!
//! Readers *pin* an epoch at admission by cloning its `Arc` (see
//! [`SnapshotView`]) and keep reading it for the whole request: a
//! concurrent write never alters a value mid-request, which is what makes
//! the bit-identity contract survive mutation. When a writer installs the
//! next epoch it marks the old one superseded
//! ([`DatasetEpoch::mark_superseded`]); the epoch *retires* — counted via
//! the hook installed with [`DatasetEpoch::set_retirement_counter`] — when
//! the last pinned reader drops its `Arc`, which is exactly "the last
//! pinned reader drains".
//!
//! Each write also reports [`WriteEffects`]: the coins whose
//! content-addressed signature bits changed (feeding incremental cache
//! invalidation — only `set_preference` produces any, because insert and
//! remove never change a `(dim, value, prob_bits)` triple) and how many
//! targets the write dirtied (bounded via posting lists, see
//! [`BatchCoinContext::attackable_targets`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::batch::BatchCoinContext;
use crate::error::Result;
use crate::preference::{OverlayPreferences, PreferenceModel};
use crate::table::Table;
use crate::types::{DimId, ObjectId, ValueId};

/// A coin whose content-addressed `(dim, value, prob_bits)` signature was
/// changed by a write: any cached component whose signature embeds this
/// triple (with the **old** bits) is stale-unreachable afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedCoin {
    /// Dimension of the edited pair.
    pub dim: DimId,
    /// The coin's value (the attacker-side value of the edited direction).
    pub value: ValueId,
    /// `pr_strict` bits this coin carried *before* the write.
    pub old_bits: u64,
}

/// What a write did, for the caller's invalidation and accounting.
#[derive(Debug, Clone, Default)]
pub struct WriteEffects {
    /// Targets whose coin view changed under this write: rows the
    /// inserted/removed object can attack, or rows carrying an edited
    /// pair's target-side value. Everything else's view — and cached
    /// components — is untouched.
    pub dirtied_targets: usize,
    /// Coins whose signature bits changed (at most two: one per edited
    /// direction). Empty for insert/remove.
    pub touched_coins: Vec<TouchedCoin>,
}

/// One immutable version of the dataset: table + batch indexes +
/// preferences, tagged with a monotonically increasing epoch id. See the
/// [module docs](self) for the lifecycle.
#[derive(Debug)]
pub struct DatasetEpoch<M> {
    id: u64,
    table: Arc<Table>,
    ctx: Arc<BatchCoinContext>,
    prefs: Arc<OverlayPreferences<M>>,
    /// Lazily computed (dataset, preference-grid) fingerprints; the
    /// computation lives in the service layer, the cache per epoch here.
    fingerprints: OnceLock<(u64, u64)>,
    superseded: AtomicBool,
    retired: Option<Arc<AtomicU64>>,
}

impl<M: PreferenceModel> DatasetEpoch<M> {
    /// Epoch 0 over a freshly built context, wrapping `prefs` in a
    /// pristine [`OverlayPreferences`] so it becomes editable.
    pub fn build(table: Table, prefs: M) -> Result<Self> {
        let ctx = BatchCoinContext::build(&table)?;
        Ok(Self::from_parts(
            0,
            Arc::new(table),
            Arc::new(ctx),
            Arc::new(OverlayPreferences::new(prefs)),
        ))
    }

    /// Assemble an epoch from shared parts (shard replication and
    /// epoch-atomic multi-engine installs reuse one build this way).
    pub fn from_parts(
        id: u64,
        table: Arc<Table>,
        ctx: Arc<BatchCoinContext>,
        prefs: Arc<OverlayPreferences<M>>,
    ) -> Self {
        Self {
            id,
            table,
            ctx,
            prefs,
            fingerprints: OnceLock::new(),
            superseded: AtomicBool::new(false),
            retired: None,
        }
    }

    /// Install the counter bumped when a *superseded* epoch is dropped by
    /// its last holder. Writes propagate the hook to derived epochs.
    pub fn set_retirement_counter(&mut self, counter: Arc<AtomicU64>) {
        self.retired = Some(counter);
    }

    /// The epoch id (0 for the initial build, +1 per committed write).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The pinned table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The pinned batch indexes.
    pub fn ctx(&self) -> &Arc<BatchCoinContext> {
        &self.ctx
    }

    /// The pinned preference overlay.
    pub fn prefs(&self) -> &Arc<OverlayPreferences<M>> {
        &self.prefs
    }

    /// Objects in this epoch.
    pub fn n_objects(&self) -> usize {
        self.table.len()
    }

    /// Mark this epoch superseded by a committed successor; its eventual
    /// drop (once the last pinned reader drains) then counts as a
    /// retirement.
    pub fn mark_superseded(&self) {
        self.superseded.store(true, Ordering::Release);
    }

    /// The cached (dataset, preference-grid) fingerprint pair, computing
    /// it with `init` on first use.
    pub fn cached_fingerprints(&self, init: impl FnOnce() -> (u64, u64)) -> (u64, u64) {
        *self.fingerprints.get_or_init(init)
    }

    fn derive(
        &self,
        table: Arc<Table>,
        ctx: Arc<BatchCoinContext>,
        prefs: Arc<OverlayPreferences<M>>,
    ) -> Self {
        Self {
            id: self.id + 1,
            table,
            ctx,
            prefs,
            fingerprints: OnceLock::new(),
            superseded: AtomicBool::new(false),
            retired: self.retired.clone(),
        }
    }

    /// The next epoch with `values` appended as a new object.
    ///
    /// Copy-on-write: the preference `Arc` is shared; table and context
    /// are derived incrementally (the context's posting lists also serve
    /// the duplicate check). No coin signature changes — the component
    /// cache stays fully valid — but the new object dirties the targets
    /// it can attack, reported for accounting.
    pub fn insert_object(&self, values: &[ValueId]) -> Result<(Self, WriteEffects)> {
        let table = self.table.with_row_appended(values)?;
        let ctx = self.ctx.with_row_appended(&table)?;
        let new_row = ObjectId((table.len() - 1) as u32);
        let dirtied = ctx.attackable_targets(self.prefs.as_ref(), new_row)?.len();
        let next = self.derive(Arc::new(table), Arc::new(ctx), Arc::clone(&self.prefs));
        Ok((next, WriteEffects { dirtied_targets: dirtied, touched_coins: Vec::new() }))
    }

    /// The next epoch with object `obj` removed (later ids shift down by
    /// one). Dirtied targets are the rows `obj` could attack, computed on
    /// the *old* context before it is spliced out.
    pub fn remove_object(&self, obj: ObjectId) -> Result<(Self, WriteEffects)> {
        let dirtied = self.ctx.attackable_targets(self.prefs.as_ref(), obj)?.len();
        let table = self.table.with_row_removed(obj)?;
        let ctx = self.ctx.with_row_removed(&table, obj)?;
        let next = self.derive(Arc::new(table), Arc::new(ctx), Arc::clone(&self.prefs));
        Ok((next, WriteEffects { dirtied_targets: dirtied, touched_coins: Vec::new() }))
    }

    /// The next epoch with `Pr(a ≺ b) = forward`, `Pr(b ≺ a) = backward`
    /// on `dim`. Table and context `Arc`s are shared; only the preference
    /// overlay is copied.
    ///
    /// The effects report, per direction whose probability bits actually
    /// changed, the coin `(dim, value, old_bits)` that became
    /// stale-unreachable (the coin a view keyed by value `a` carries
    /// probability `Pr(a ≺ b)` against targets valued `b`, and vice
    /// versa), plus how many targets carry the affected target-side value
    /// — zero when the attacker-side value never occurs in the dataset.
    pub fn set_preference(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<(Self, WriteEffects)>
    where
        M: Clone,
    {
        let old_ab = self.prefs.pr_strict(dim, a, b);
        let old_ba = self.prefs.pr_strict(dim, b, a);
        let prefs = self.prefs.with_pair(dim, a, b, forward, backward)?;
        let mut effects = WriteEffects::default();
        let occurrences = |v| self.ctx.value_count(dim, v).unwrap_or(0);
        if forward.to_bits() != old_ab.to_bits() {
            effects.touched_coins.push(TouchedCoin { dim, value: a, old_bits: old_ab.to_bits() });
            // Coin (dim, a) with these bits appears only in views of
            // targets valued b, and only when some row carries a.
            if occurrences(a) > 0 {
                effects.dirtied_targets += occurrences(b);
            }
        }
        if backward.to_bits() != old_ba.to_bits() {
            effects.touched_coins.push(TouchedCoin { dim, value: b, old_bits: old_ba.to_bits() });
            if occurrences(b) > 0 {
                effects.dirtied_targets += occurrences(a);
            }
        }
        let next = self.derive(Arc::clone(&self.table), Arc::clone(&self.ctx), Arc::new(prefs));
        Ok((next, effects))
    }
}

impl<M> Drop for DatasetEpoch<M> {
    fn drop(&mut self) {
        // Dropping a *superseded* epoch means its last pin drained after a
        // successor was installed — a retirement. Dropping a current
        // epoch (engine teardown) is not one.
        if self.superseded.load(Ordering::Acquire) {
            if let Some(counter) = &self.retired {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A reader's pin on one epoch: a cheap `Arc` clone taken at admission and
/// held for the request's lifetime, guaranteeing every structure read —
/// table, indexes, preferences — belongs to one consistent version.
#[derive(Debug)]
pub struct SnapshotView<M> {
    epoch: Arc<DatasetEpoch<M>>,
}

impl<M> Clone for SnapshotView<M> {
    fn clone(&self) -> Self {
        Self { epoch: Arc::clone(&self.epoch) }
    }
}

impl<M: PreferenceModel> SnapshotView<M> {
    /// Pin `epoch`.
    pub fn pin(epoch: &Arc<DatasetEpoch<M>>) -> Self {
        Self { epoch: Arc::clone(epoch) }
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> &DatasetEpoch<M> {
        &self.epoch
    }

    /// The pinned epoch id.
    pub fn id(&self) -> u64 {
        self.epoch.id()
    }

    /// The pinned table.
    pub fn table(&self) -> &Arc<Table> {
        self.epoch.table()
    }

    /// The pinned batch indexes.
    pub fn ctx(&self) -> &Arc<BatchCoinContext> {
        self.epoch.ctx()
    }

    /// The pinned preference overlay.
    pub fn prefs(&self) -> &Arc<OverlayPreferences<M>> {
        self.epoch.prefs()
    }

    /// Objects in the pinned epoch.
    pub fn n_objects(&self) -> usize {
        self.epoch.n_objects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::preference::SeededPreferences;

    fn fixture() -> DatasetEpoch<SeededPreferences> {
        let t =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        DatasetEpoch::build(t, SeededPreferences::complementary(7)).unwrap()
    }

    #[test]
    fn writes_derive_monotone_epochs_and_share_untouched_arcs() {
        let e0 = fixture();
        assert_eq!(e0.id(), 0);
        let (e1, fx) = e0.insert_object(&[ValueId(2), ValueId(0)]).unwrap();
        assert_eq!(e1.id(), 1);
        assert_eq!(e1.n_objects(), 6);
        assert!(fx.touched_coins.is_empty(), "insert never changes a signature");
        // Prefs shared, table/ctx fresh.
        assert!(Arc::ptr_eq(e0.prefs(), e1.prefs()));
        assert!(!Arc::ptr_eq(e0.table(), e1.table()));
        // e0 unchanged.
        assert_eq!(e0.n_objects(), 5);

        let (e2, _) = e1.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        assert_eq!(e2.id(), 2);
        assert!(Arc::ptr_eq(e1.table(), e2.table()));
        assert!(Arc::ptr_eq(e1.ctx(), e2.ctx()));
        assert!(!Arc::ptr_eq(e1.prefs(), e2.prefs()));

        let (e3, fx) = e2.remove_object(ObjectId(0)).unwrap();
        assert_eq!(e3.n_objects(), 5);
        assert!(fx.touched_coins.is_empty());
    }

    #[test]
    fn set_preference_reports_only_changed_directions() {
        let e0 = fixture();
        let p = e0.prefs().clone();
        let (dim, a, b) = (DimId(0), ValueId(0), ValueId(1));
        let old_ab = p.pr_strict(dim, a, b);
        let old_ba = p.pr_strict(dim, b, a);
        // Change only the forward direction (the seeded model is
        // complementary, so halving it keeps the pair mass legal).
        let (e1, fx) = e0.set_preference(dim, a, b, old_ab * 0.5, old_ba).unwrap();
        assert_eq!(fx.touched_coins.len(), 1);
        assert_eq!(fx.touched_coins[0], TouchedCoin { dim, value: a, old_bits: old_ab.to_bits() });
        // Values 0 and 1 both occur on dim 0 (rows 0/4 and 1/2): targets
        // valued b attacked via the a-coin.
        assert_eq!(fx.dirtied_targets, 2);
        // A bit-identical rewrite touches nothing.
        let new_ab = e1.prefs().pr_strict(dim, a, b);
        let (_, fx) = e1.set_preference(dim, a, b, new_ab, old_ba).unwrap();
        assert!(fx.touched_coins.is_empty());
        assert_eq!(fx.dirtied_targets, 0);
    }

    #[test]
    fn set_preference_on_absent_values_dirties_nothing() {
        let e0 = fixture();
        let (_, fx) = e0.set_preference(DimId(1), ValueId(40), ValueId(41), 0.3, 0.3).unwrap();
        // Signatures for coins on absent values did "change", but no
        // target carries them.
        assert_eq!(fx.dirtied_targets, 0);
    }

    #[test]
    fn writes_validate_inputs() {
        let e0 = fixture();
        // Duplicate row.
        assert!(matches!(
            e0.insert_object(&[ValueId(1), ValueId(0)]),
            Err(CoreError::DuplicateObject { .. })
        ));
        assert!(matches!(
            e0.insert_object(&[ValueId(1)]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(e0.remove_object(ObjectId(9)), Err(CoreError::TargetOutOfRange { .. })));
        assert!(matches!(
            e0.set_preference(DimId(0), ValueId(3), ValueId(3), 0.5, 0.5),
            Err(CoreError::SelfPreference { .. })
        ));
    }

    #[test]
    fn superseded_epochs_retire_when_the_last_pin_drops() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut e0 = fixture();
        e0.set_retirement_counter(Arc::clone(&counter));
        let e0 = Arc::new(e0);
        let (e1, _) = e0.insert_object(&[ValueId(9), ValueId(9)]).unwrap();
        let e1 = Arc::new(e1);
        let pin = SnapshotView::pin(&e0);
        e0.mark_superseded();
        drop(e0);
        // A reader still pins epoch 0: not retired yet.
        assert_eq!(counter.load(Ordering::Relaxed), 0);
        assert_eq!(pin.id(), 0);
        drop(pin);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        // Tearing down the *current* epoch is not a retirement.
        drop(e1);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
