//! Property-based tests of the core data model.

use proptest::prelude::*;

use presky_core::prelude::*;

fn decode_row(mut idx: usize, d: usize, base: usize) -> Vec<u32> {
    let mut row = Vec::with_capacity(d);
    for _ in 0..d {
        row.push((idx % base) as u32);
        idx /= base;
    }
    row
}

/// Distinct-row tables over small categorical domains.
fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=4).prop_flat_map(|d| {
        let base = 4usize;
        let space = base.pow(d as u32);
        (2usize..=space.min(10)).prop_flat_map(move |n| {
            proptest::collection::btree_set(0..space, n).prop_map(move |idxs| {
                let rows: Vec<Vec<u32>> = idxs.iter().map(|&i| decode_row(i, d, base)).collect();
                Table::from_rows_raw(d, &rows).expect("valid rows")
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn seeded_models_satisfy_the_contract(
        seed in any::<u64>(),
        dim in 0u32..8,
        a in 0u32..64,
        b in 0u32..64,
    ) {
        for law in [
            PairLaw::Unanimous,
            PairLaw::Complementary,
            PairLaw::Simplex,
            PairLaw::CertainCoin,
            PairLaw::CertainAscending,
        ] {
            let m = SeededPreferences::new(seed, law);
            let f = m.pr_strict(DimId(dim), ValueId(a), ValueId(b));
            let r = m.pr_strict(DimId(dim), ValueId(b), ValueId(a));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!((0.0..=1.0).contains(&r));
            if a == b {
                prop_assert_eq!(f, 0.0);
            } else {
                prop_assert!(f + r <= 1.0 + 1e-12, "{law:?}: {f} + {r}");
            }
            // Weak preference is 1 on the diagonal, strict elsewhere.
            let w = m.pr_weak(DimId(dim), ValueId(a), ValueId(b));
            if a == b {
                prop_assert_eq!(w, 1.0);
            } else {
                prop_assert_eq!(w, f);
            }
        }
    }

    #[test]
    fn coin_view_structure_matches_the_table(table in table_strategy()) {
        let prefs = SeededPreferences::complementary(7);
        for target in table.objects() {
            let view = CoinView::build(&table, &prefs, target).unwrap();
            prop_assert_eq!(view.n_attackers(), table.len() - 1);
            // Coins are exactly the relevant pairs.
            let pairs = relevant_pairs_for_target(&table, target);
            prop_assert_eq!(view.n_coins(), pairs.len());
            for (i, a) in view.attackers().iter().enumerate() {
                // Sorted, deduplicated, non-empty.
                prop_assert!(!a.coins.is_empty());
                prop_assert!(a.coins.windows(2).all(|w| w[0] < w[1]));
                // Pr(e_i) from the view equals Equation 2 from the table.
                let direct = pr_dominates(&table, &prefs, a.source, target);
                prop_assert!((view.attacker_prob(i) - direct).abs() < 1e-12);
                // Coin count = number of differing dimensions.
                prop_assert_eq!(
                    a.coins.len(),
                    differing_dims(&table, a.source, target).len()
                );
            }
        }
    }

    #[test]
    fn restriction_preserves_attacker_semantics(table in table_strategy()) {
        let prefs = SeededPreferences::complementary(13);
        let target = ObjectId(0);
        let view = CoinView::build(&table, &prefs, target).unwrap();
        let n = view.n_attackers();
        // Keep every other attacker.
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let sub = view.restrict(&keep);
        prop_assert_eq!(sub.n_attackers(), keep.len());
        for (new_i, &old_i) in keep.iter().enumerate() {
            prop_assert_eq!(sub.source(new_i), view.source(old_i));
            prop_assert!((sub.attacker_prob(new_i) - view.attacker_prob(old_i)).abs() < 1e-12);
        }
        prop_assert!(sub.n_coins() <= view.n_coins());
    }

    #[test]
    fn world_enumeration_is_a_probability_distribution(table in table_strategy()) {
        let prefs = SeededPreferences::new(3, PairLaw::Simplex);
        let pairs = relevant_pairs_for_target(&table, ObjectId(0));
        prop_assume!(pairs.len() <= 10);
        let mut total = 0.0;
        let mut worlds = 0usize;
        for_each_world(&pairs, &prefs, |w, p| {
            total += p;
            worlds += 1;
            assert!(p > 0.0, "zero-probability branches must be pruned");
            assert_eq!(w.len(), pairs.len(), "every pair resolved");
        });
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total} over {worlds} worlds");
    }

    #[test]
    fn checking_sequence_is_a_permutation_sorted_by_probability(table in table_strategy()) {
        let prefs = SeededPreferences::complementary(23);
        let view = CoinView::build(&table, &prefs, ObjectId(0)).unwrap();
        let seq = view.checking_sequence();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..view.n_attackers()).collect::<Vec<_>>());
        for w in seq.windows(2) {
            prop_assert!(
                view.attacker_prob(w[0]) >= view.attacker_prob(w[1]) - 1e-15
            );
        }
    }

    #[test]
    fn projection_then_dedup_never_grows(table in table_strategy()) {
        let d = table.dimensionality();
        prop_assume!(d >= 2);
        let keep: Vec<DimId> = (0..d - 1).map(DimId::from).collect();
        let projected = table.project(&keep).unwrap();
        prop_assert_eq!(projected.len(), table.len());
        let dd = projected.dedup_rows();
        prop_assert!(dd.len() <= projected.len());
        prop_assert!(dd.find_duplicate().is_none());
    }

    #[test]
    fn dominance_is_antisymmetric_in_certain_orders(table in table_strategy()) {
        let order = DeterministicOrder::ascending();
        for a in table.objects() {
            for b in table.objects() {
                let ab = pr_dominates(&table, &order, a, b);
                let ba = pr_dominates(&table, &order, b, a);
                prop_assert!(ab == 0.0 || ba == 0.0, "{a} vs {b}: {ab}, {ba}");
            }
        }
    }
}
