//! Errors of the service layer.

use std::fmt;

use presky_query::error::QueryError;

/// Failure modes of the resident query service.
///
/// The first two variants are *admission* rejections — deterministic,
/// stateless shedding decisions made before any query work runs. The last
/// wraps a genuine query-layer failure. Budget exhaustion is **not** an
/// error here: it surfaces as the typed
/// [`Outcome::DeadlineExceeded`](crate::request::Outcome::DeadlineExceeded).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The engine is already running its configured maximum of concurrent
    /// requests; this one was shed without doing any work.
    Overloaded {
        /// Requests in flight when this one arrived.
        in_flight: usize,
        /// The configured admission ceiling.
        max: usize,
    },
    /// The request's predicted cost exceeds the engine's per-request
    /// ceiling; it was shed without doing any work.
    CostCeiling {
        /// Predicted cost of this request (machine-word operations).
        predicted: u64,
        /// The configured ceiling.
        max: u64,
    },
    /// The query layer failed (invalid τ, `k = 0`, oversized component, …).
    Query(QueryError),
    /// A cache warmstart snapshot could not be loaded or saved. Carries
    /// the rendered [`SnapshotError`](presky_exact::snapshot::SnapshotError)
    /// (the underlying type holds an `io::Error` and so cannot be `Clone`).
    Warmstart {
        /// Human-readable cause.
        detail: String,
    },
    /// The request named a tenant this engine has no registration for.
    /// Refused before any query work runs; registration is the caller's
    /// responsibility ([`Engine::register_tenant`](crate::Engine::register_tenant)).
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, max } => {
                write!(f, "engine overloaded: {in_flight} requests in flight (max {max})")
            }
            ServiceError::CostCeiling { predicted, max } => {
                write!(f, "predicted request cost {predicted} exceeds the ceiling {max}")
            }
            ServiceError::Query(e) => write!(f, "{e}"),
            ServiceError::Warmstart { detail } => write!(f, "cache warmstart: {detail}"),
            ServiceError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant}: not registered with this engine")
            }
        }
    }
}

impl From<presky_exact::snapshot::SnapshotError> for ServiceError {
    fn from(e: presky_exact::snapshot::SnapshotError) -> Self {
        ServiceError::Warmstart { detail: e.to_string() }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::Query(e)
    }
}

impl ServiceError {
    /// Whether this request was shed by admission control (no work done).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServiceError::Overloaded { .. } | ServiceError::CostCeiling { .. })
    }
}

/// Result alias for this crate.
pub type Result<T, E = ServiceError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = ServiceError::Overloaded { in_flight: 64, max: 64 };
        assert!(e.is_shed());
        assert!(e.to_string().contains("64"));
        let e = ServiceError::CostCeiling { predicted: 10, max: 5 };
        assert!(e.is_shed());
        let e: ServiceError = QueryError::ZeroK.into();
        assert!(!e.is_shed());
        assert!(std::error::Error::source(&e).is_some());
        let e = ServiceError::UnknownTenant { tenant: 17 };
        assert!(!e.is_shed());
        assert!(e.to_string().contains("unknown tenant 17"));
    }
}
