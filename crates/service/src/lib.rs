//! # presky-service — the resident query service
//!
//! The query crate answers one-shot questions; this crate keeps the
//! answers *coming*. An [`Engine`] loads a dataset once — dense value
//! codes, posting lists, the `pr_strict` memo of the batch coin context,
//! and a cross-request component cache — and then serves a mixed workload
//! of [`Request`]s (`sky_one`, `all_sky`, threshold, top-k) from any
//! number of threads over one shared handle.
//!
//! Each request carries a [`Budget`] (wall-clock deadline plus
//! joint/sample ceilings) enforced at chunk granularity inside the exact
//! DFS and the samplers; the conclusion is a typed [`Outcome`]:
//!
//! * [`Outcome::Exact`] — every value certified exact;
//! * [`Outcome::Estimate`] — at least one Monte-Carlo or sequential
//!   decision;
//! * [`Outcome::DeadlineExceeded`] — the budget tripped; the partial
//!   value holds everything completed in time, each slot bit-identical
//!   to the unbudgeted run. **A budget never changes a value — it can
//!   only withhold one.**
//!
//! Two deterministic admission gates ([`EngineOptions::max_in_flight`],
//! [`EngineOptions::max_predicted_cost`]) shed load before any work runs,
//! and a [`MetricsSnapshot`] exposes merged pipeline statistics, cache
//! occupancy and hit rate, and the deadline-miss / shed counters.
//!
//! The dataset is **live**: [`Engine::insert_object`],
//! [`Engine::remove_object`] and [`Engine::set_preference`] commit new
//! epoch/MVCC snapshots while readers keep answering bit-identically from
//! the epoch they pinned at admission ([`Response::epoch`] records
//! which), and preference edits invalidate only the signature-touched
//! slice of the component cache. Each commit returns a [`CommitReceipt`]
//! with the installed epoch and exact eviction accounting.
//!
//! ```
//! use presky_core::prelude::*;
//! use presky_service::prelude::*;
//!
//! let table = Table::from_rows_raw(2, &[vec![0, 0], vec![0, 1], vec![1, 1]]).unwrap();
//! let prefs = TablePreferences::with_default(PrefPair::half());
//! let engine = Engine::new(table, prefs, EngineOptions::default()).unwrap();
//!
//! let response = engine.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap();
//! let sky = response.outcome.value().as_sky().unwrap();
//! assert!((sky.sky - 0.5).abs() < 1e-12);
//! assert!(engine.metrics().completed == 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coalesce;
pub mod digest;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod request;
pub mod sharded;
pub mod tenant;

pub use digest::digest;
pub use engine::{CommitReceipt, Engine, EngineOptions};
pub use error::ServiceError;
pub use metrics::{MetricsSnapshot, TenantMetrics};
pub use request::{Budget, Outcome, Query, Request, Response, Value};
pub use sharded::ShardedEngine;
pub use tenant::{OverlayHandle, TenantId};

/// Commonly used names.
pub mod prelude {
    pub use crate::digest::digest;
    pub use crate::engine::{CommitReceipt, Engine, EngineOptions};
    pub use crate::error::ServiceError;
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::request::{Budget, Outcome, Query, Request, Response, Value};
    pub use crate::sharded::ShardedEngine;
    pub use crate::tenant::{OverlayHandle, TenantId};
    pub use presky_query::engine::{
        ElicitOptions, ElicitationCandidate, Sensitivity, SensitivityOptions, TargetSensitivity,
    };
    pub use presky_query::prob_skyline::QueryOptions;
    pub use presky_query::threshold::ThresholdOptions;
    pub use presky_query::topk::TopKOptions;
}
