//! Multi-tenant preference overlays over one shared base model.
//!
//! The production shape for this workload is millions of users sharing a
//! population-level base preference model plus a small per-user delta of
//! elicited pairs. A [`TenantId`] names one such user; registering it
//! deposits a validated [`PrefDelta`] in the engine's tenant registry,
//! and a [`Request`](crate::Request) carrying the tenant resolves its
//! preferences through a
//! [`DeltaOverlay`](presky_core::preference::DeltaOverlay) layered over
//! the pinned epoch's base model.
//!
//! ## The sharing guarantee
//!
//! Component-cache keys are content-addressed over `(dim, value,
//! prob_bits)` coin triples, so a component whose coins are disjoint from
//! a tenant's overlay serializes to the **same bytes** as the base
//! model's component — one shared cache entry serves every tenant that
//! reaches it. Only overlay-touched components get tenant-specific keys
//! (their probability bits differ), and those too are shared between
//! tenants whose overlays happen to agree. The per-tenant written-coin mask
//! classifies hits into cross-user (base-signature) vs overlay-touched
//! for the [`cross_user_hits`](crate::MetricsSnapshot::cross_user_hits)
//! telemetry; cache *soundness* never depends on it.
//!
//! ## Update semantics
//!
//! Tenant state is copy-on-write: an update builds a new validated
//! [`PrefDelta`] and swaps the registry's `Arc` — in-flight requests that
//! already resolved the old state keep serving it bit-identically, the
//! same MVCC discipline the dataset epochs use. An overlay edit never
//! touches the component cache: entries keyed by the old overlay bits
//! simply become unreachable from the new fingerprint's signatures.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use presky_core::preference::PrefDelta;
use presky_core::types::{DimId, ValueId};
use presky_exact::signature::CoinMask;
use presky_exact::snapshot::Fnv;

/// An opaque tenant identifier, assigned by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// Receipt of one tenant registration or overlay update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct OverlayHandle {
    /// The tenant this handle describes.
    pub tenant: TenantId,
    /// Content fingerprint of the overlay: `0` for an empty overlay
    /// (which is contractually bit-identical to no tenant at all), an
    /// FNV over the sorted pair table otherwise. Mixed into the
    /// single-flight coalescing key, so identical concurrent queries
    /// coalesce exactly when their overlays agree bit-for-bit.
    pub fingerprint: u64,
    /// Distinct preference pairs in the overlay.
    pub pairs: usize,
}

/// One tenant's resolved overlay state: the validated delta, its content
/// fingerprint, and the written-coin mask for hit classification.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) delta: PrefDelta,
    pub(crate) fingerprint: u64,
    pub(crate) mask: CoinMask,
}

impl TenantState {
    fn new(delta: PrefDelta) -> Self {
        let fingerprint = delta_fingerprint(&delta);
        // The exact coins this overlay writes: for a pair `(a, b)`, the
        // value-`a` coin facing `b` carries `Pr(a ≺ b)` and the value-`b`
        // coin facing `a` carries `Pr(b ≺ a)`. Coins on the same values
        // facing other partners keep their base bits — and their shared
        // base cache keys — so they stay out of the mask.
        let mask: CoinMask = delta
            .pairs_sorted()
            .into_iter()
            .flat_map(|(d, a, b, pair)| {
                [(d.0, a.0, pair.forward.to_bits()), (d.0, b.0, pair.backward.to_bits())]
            })
            .collect();
        Self { delta, fingerprint, mask }
    }
}

/// Content fingerprint of one overlay: `0` when empty, FNV over the
/// sorted `(dim, lo, hi, forward_bits, backward_bits)` rows otherwise.
/// Depends only on the pair table — not on insertion order, the tenant
/// id, or the base model.
pub(crate) fn delta_fingerprint(delta: &PrefDelta) -> u64 {
    if delta.is_empty() {
        return 0;
    }
    let mut h = Fnv::new();
    for (dim, a, b, pair) in delta.pairs_sorted() {
        h.eat(&(dim.0 as u64).to_le_bytes());
        h.eat(&(a.0 as u64).to_le_bytes());
        h.eat(&(b.0 as u64).to_le_bytes());
        h.eat(&pair.forward.to_bits().to_le_bytes());
        h.eat(&pair.backward.to_bits().to_le_bytes());
    }
    h.finish()
}

/// The engine's tenant table. One registry instance is shared (by `Arc`)
/// across every shard of a sharded deployment, so registration on any
/// handle is visible fleet-wide and fan-out resolves identically on every
/// shard.
#[derive(Debug, Default)]
pub(crate) struct TenantRegistry {
    tenants: RwLock<HashMap<u64, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// Resolve a tenant to its current overlay state (an `Arc` pin: the
    /// request keeps this exact state for its whole execution, however
    /// many updates land meanwhile).
    pub(crate) fn resolve(&self, tenant: u64) -> Option<Arc<TenantState>> {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).get(&tenant).cloned()
    }

    /// Install `delta` as `tenant`'s overlay (registering or replacing).
    pub(crate) fn install(&self, tenant: TenantId, delta: PrefDelta) -> OverlayHandle {
        let state = TenantState::new(delta);
        let handle =
            OverlayHandle { tenant, fingerprint: state.fingerprint, pairs: state.delta.len() };
        self.tenants.write().unwrap_or_else(|e| e.into_inner()).insert(tenant.0, Arc::new(state));
        handle
    }

    /// Registered tenants.
    pub(crate) fn len(&self) -> usize {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Identity hash of the whole registry: `0` when no tenants are
    /// registered (so untenanted snapshot files keep their fingerprint),
    /// an FNV over the sorted `(id, overlay_fingerprint)` rows otherwise.
    /// This is the third field of
    /// [`SnapshotFingerprint`](presky_exact::snapshot::SnapshotFingerprint):
    /// a cache snapshot saved by a tenant-serving engine may hold
    /// overlay-keyed entries, so warm-starting an engine with a drifted
    /// registry is refused naming the tenant-registry field.
    pub(crate) fn fingerprint(&self) -> u64 {
        let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        if tenants.is_empty() {
            return 0;
        }
        let mut rows: Vec<(u64, u64)> =
            tenants.iter().map(|(&id, state)| (id, state.fingerprint)).collect();
        rows.sort_unstable();
        let mut h = Fnv::new();
        for (id, fp) in rows {
            h.eat(&id.to_le_bytes());
            h.eat(&fp.to_le_bytes());
        }
        h.finish()
    }
}

/// Build a validated [`PrefDelta`] from `(dim, a, b, forward, backward)`
/// rows. Shared by registration and the deterministic synthetic-overlay
/// generator of the `serve`/`tenant_bench` workloads.
pub(crate) fn delta_from_pairs(
    pairs: &[(DimId, ValueId, ValueId, f64, f64)],
) -> presky_core::error::Result<PrefDelta> {
    let mut delta = PrefDelta::new();
    for &(dim, a, b, forward, backward) in pairs {
        delta = delta.with_pair(dim, a, b, forward, backward)?;
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(rows: &[(u32, u32, u32, f64, f64)]) -> Vec<(DimId, ValueId, ValueId, f64, f64)> {
        rows.iter().map(|&(d, a, b, f, r)| (DimId(d), ValueId(a), ValueId(b), f, r)).collect()
    }

    #[test]
    fn fingerprint_is_content_addressed_and_order_free() {
        let fwd = delta_from_pairs(&pairs(&[(0, 1, 2, 0.7, 0.2), (1, 0, 3, 0.4, 0.4)])).unwrap();
        let rev = delta_from_pairs(&pairs(&[(1, 0, 3, 0.4, 0.4), (0, 1, 2, 0.7, 0.2)])).unwrap();
        assert_eq!(delta_fingerprint(&fwd), delta_fingerprint(&rev));
        let other = delta_from_pairs(&pairs(&[(0, 1, 2, 0.7, 0.25)])).unwrap();
        assert_ne!(delta_fingerprint(&fwd), delta_fingerprint(&other));
        assert_eq!(delta_fingerprint(&PrefDelta::new()), 0, "empty overlay ≡ no tenant");
    }

    #[test]
    fn registry_round_trips_and_fingerprints_sorted() {
        let reg = TenantRegistry::default();
        assert_eq!(reg.fingerprint(), 0);
        let d1 = delta_from_pairs(&pairs(&[(0, 1, 2, 0.7, 0.2)])).unwrap();
        let d2 = delta_from_pairs(&pairs(&[(1, 0, 3, 0.4, 0.4)])).unwrap();
        let h1 = reg.install(TenantId(7), d1.clone());
        assert_eq!(h1.pairs, 1);
        assert_ne!(h1.fingerprint, 0);
        reg.install(TenantId(3), d2.clone());
        assert_eq!(reg.len(), 2);
        let fp_a = reg.fingerprint();

        // Same contents inserted in the other order: same registry hash.
        let reg2 = TenantRegistry::default();
        reg2.install(TenantId(3), d2);
        reg2.install(TenantId(7), d1);
        assert_eq!(reg2.fingerprint(), fp_a);

        // Replacing an overlay moves the registry fingerprint.
        reg.install(TenantId(7), PrefDelta::new());
        assert_ne!(reg.fingerprint(), fp_a);
        assert_eq!(reg.resolve(7).unwrap().fingerprint, 0);
        assert!(reg.resolve(99).is_none());
    }

    #[test]
    fn mask_covers_exactly_the_written_coins_of_every_pair() {
        let delta = delta_from_pairs(&pairs(&[(0, 1, 2, 0.7, 0.2)])).unwrap();
        let state = TenantState::new(delta);
        // Coin (0, 1) facing 2 carries Pr(1 ≺ 2) = 0.7; coin (0, 2)
        // facing 1 carries Pr(2 ≺ 1) = 0.2. Nothing else is written.
        assert!(state.mask.contains(0, 1, 0.7f64.to_bits()));
        assert!(state.mask.contains(0, 2, 0.2f64.to_bits()));
        assert!(!state.mask.contains(0, 1, 0.2f64.to_bits()));
        assert!(!state.mask.contains(1, 1, 0.7f64.to_bits()));
        assert_eq!(state.mask.len(), 2);
    }

    #[test]
    fn invalid_pairs_are_refused_at_registration() {
        assert!(delta_from_pairs(&pairs(&[(0, 1, 1, 0.5, 0.5)])).is_err(), "self pair");
        assert!(delta_from_pairs(&pairs(&[(0, 1, 2, 0.8, 0.8)])).is_err(), "mass > 1");
    }
}
