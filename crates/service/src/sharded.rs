//! Sharded all-sky fan-out: one request, N engines, one bit-identical
//! answer — now over a live, mutable dataset.
//!
//! [`ShardedEngine`] partitions the **targets** of an all-sky batch into
//! contiguous ranges, one per [`Engine`] shard. Coin indexes (the
//! batch context) are *replicated* — every shard holds the full
//! table and can assemble any target's view — because a target's attackers
//! come from the whole dataset, not from its own range. What is
//! partitioned is the work and the mutable state: each shard owns its own
//! component cache, metrics, and admission ceiling.
//!
//! ## Epoch-atomic writes
//!
//! Every shard serves the *same* epoch: a commit derives the next epoch
//! **once** from shard 0's current one and installs per-shard replicas
//! that share the new table/index/preference `Arc`s (each shard's
//! replica is its own [`DatasetEpoch`] wrapper so per-shard retirement
//! accounting still works). Two locks make this atomic:
//!
//! * a fleet-wide **writer** mutex serialises commits;
//! * an **epoch gate** (`RwLock<()>`): an all-sky fan-out holds the read
//!   side for its whole fan-out, a committing writer takes the write
//!   side — so a write can never land between one shard's slice and the
//!   next's, and a fanned-out answer is always computed against a single
//!   epoch. Single-shard shapes don't need the gate: they pin their
//!   serving shard's epoch like any [`Engine`] request.
//!
//! Target ranges are recomputed per request from the current row count,
//! so inserts and removals rebalance the fan-out automatically.
//!
//! ## Merge invariants
//!
//! An `AllSky` request fans out on scoped threads, each shard solving its
//! range through the query crate's global-index range driver, then merges:
//!
//! * **values** — concatenated in range order. Per-object seed
//!   decorrelation uses the *global* object index, so every slot is
//!   bit-identical to the single-engine run at any shard count;
//! * **stats** — [`PipelineStats::merge`] (additive, max for
//!   `largest_component`), associative, so totals equal the single-engine
//!   totals for every deterministic counter (`cache_hits` depends on which
//!   worker — here, which shard — reached a component first, exactly as it
//!   already depends on thread interleaving within one engine);
//! * **truncation** — summed; the merged withheld-slot set is the union of
//!   the per-shard partials and the [`Outcome`] reclassifies over it.
//!
//! One wall-clock budget is pinned *before* the fan-out, so all shards
//! share an absolute deadline; joint/sample ledgers apply **per shard**
//! (each shard's slice may spend up to the request's ledger).
//!
//! ## Thread allowance
//!
//! The request's thread count is split evenly across shards; the
//! remainder is seeded into one shared [`ThreadBudget`] pot, and a shard
//! whose range cannot use its full grant deposits the difference back, so
//! shards' intra-component DFS leases draw on one machine-wide allowance
//! and never oversubscribe the host.
//!
//! Non-batch shapes don't fan out: `SkyOne` routes to the shard owning
//! the target (any shard could answer; routing spreads load and cache
//! residency), `Threshold` and `TopK` delegate to shard 0. All delegated
//! shapes keep the full single-engine path, coalescing included.

use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use presky_core::epoch::{DatasetEpoch, SnapshotView, WriteEffects};
use presky_core::pool::ThreadBudget;
use presky_core::preference::PreferenceModel;
use presky_core::table::Table;
use presky_core::types::{DimId, ObjectId, ValueId};

use presky_exact::cache::ComponentCache;
use presky_exact::snapshot;
use presky_query::engine::PipelineStats;
use presky_query::prob_skyline::QueryOptions;

use crate::engine::{CommitReceipt, Engine, EngineOptions};
use crate::error::{Result, ServiceError};
use crate::metrics::{inc, MetricsSnapshot};
use crate::request::{Budget, Outcome, Query, Request, Response, Value};
use crate::tenant::{OverlayHandle, TenantId};

/// N [`Engine`] shards serving one live dataset, fanning all-sky requests
/// across them. See the [module docs](self) for the partitioning, write
/// and merge invariants.
#[derive(Debug)]
pub struct ShardedEngine<M> {
    shards: Vec<Engine<M>>,
    /// Serialises commits fleet-wide (each shard's own writer lock only
    /// guards that shard; cross-shard installs need one owner).
    writer: Mutex<()>,
    /// Read-held across an all-sky fan-out, write-held across a commit's
    /// per-shard installs: no write lands mid-fan-out.
    epoch_gate: RwLock<()>,
    opts: EngineOptions,
}

impl<M: PreferenceModel + Send + Sync + Clone> ShardedEngine<M> {
    /// Build the epoch once and replicate it across `n_shards` engines
    /// (`0` shards is treated as `1`); replicas share the table, index
    /// and preference `Arc`s.
    pub fn new(table: Table, prefs: M, opts: EngineOptions, n_shards: usize) -> Result<Self> {
        let n_shards = n_shards.max(1);
        let built =
            DatasetEpoch::build(table, prefs).map_err(presky_query::error::QueryError::from)?;
        let (table, ctx, prefs) =
            (Arc::clone(built.table()), Arc::clone(built.ctx()), Arc::clone(built.prefs()));
        let mut shards = Vec::with_capacity(n_shards);
        shards.push(Engine::from_epoch(built, opts));
        // One tenant registry for the whole fleet: a registration through
        // any handle resolves identically on every shard, so a fanned-out
        // request applies one consistent overlay across its slices.
        let tenants = shards[0].tenants_arc();
        for _ in 1..n_shards {
            let replica = DatasetEpoch::from_parts(
                0,
                Arc::clone(&table),
                Arc::clone(&ctx),
                Arc::clone(&prefs),
            );
            let mut shard = Engine::from_epoch(replica, opts);
            shard.share_tenants(Arc::clone(&tenants));
            shards.push(shard);
        }
        Ok(Self { shards, writer: Mutex::new(()), epoch_gate: RwLock::new(()), opts })
    }

    /// [`ShardedEngine::new`], then warm every shard's cache from the
    /// same snapshot file. Each shard verifies the fingerprint; entries
    /// a shard's range never probes simply sit idle under its byte cap.
    pub fn with_warm_cache(
        table: Table,
        prefs: M,
        opts: EngineOptions,
        n_shards: usize,
        path: &Path,
    ) -> Result<Self> {
        let mut this = Self::new(table, prefs, opts, n_shards)?;
        for shard in &mut this.shards {
            shard.load_cache_from(path)?;
        }
        Ok(this)
    }

    /// Warm every shard's cache from `path` on a built fleet — the
    /// post-construction arm of [`with_warm_cache`] for deployments that
    /// must [`register_tenant`](ShardedEngine::register_tenant) *before*
    /// loading (the snapshot fingerprint covers the tenant registry).
    ///
    /// [`with_warm_cache`]: ShardedEngine::with_warm_cache
    pub fn load_cache_snapshot(&mut self, path: &Path) -> Result<()> {
        for shard in &mut self.shards {
            shard.load_cache_from(path)?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Objects in the current epoch.
    pub fn n_objects(&self) -> usize {
        self.shards[0].n_objects()
    }

    /// The current epoch id (identical across shards outside a commit).
    pub fn epoch(&self) -> u64 {
        self.shards[0].epoch()
    }

    /// A read-only view pinned to the current epoch (shard 0's replica —
    /// every shard shares the same underlying `Arc`s, so the view speaks
    /// for the whole fleet).
    pub fn snapshot(&self) -> SnapshotView<M> {
        self.shards[0].snapshot()
    }

    /// Register (or replace) `tenant`'s preference overlay fleet-wide.
    /// The registry is shared by `Arc` across shards, so one call makes
    /// the overlay visible to every shard at once; see
    /// [`Engine::register_tenant`] for validation and cache semantics.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        overlay_pairs: &[(DimId, ValueId, ValueId, f64, f64)],
    ) -> Result<OverlayHandle> {
        self.shards[0].register_tenant(tenant, overlay_pairs)
    }

    /// Copy-on-write update of one pair in `tenant`'s overlay, visible
    /// fleet-wide (see [`Engine::set_tenant_preference`]).
    pub fn set_tenant_preference(
        &self,
        tenant: TenantId,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<OverlayHandle> {
        self.shards[0].set_tenant_preference(tenant, dim, a, b, forward, backward)
    }

    /// Registered tenants (fleet-wide — the registry is shared).
    pub fn n_tenants(&self) -> usize {
        self.shards[0].n_tenants()
    }

    /// Contiguous per-shard target ranges over `n` objects, recomputed
    /// per request so writes rebalance the fan-out.
    fn target_ranges(&self, n: usize) -> Vec<Range<usize>> {
        let k = self.shards.len();
        (0..k).map(|s| s * n / k..(s + 1) * n / k).collect()
    }

    /// Commit a new object with `values` across every shard. See
    /// [`Engine::insert_object`] for the invalidation semantics; the
    /// receipt sums evictions over the per-shard caches.
    pub fn insert_object(&self, values: &[ValueId]) -> Result<CommitReceipt> {
        self.commit_write(|epoch| epoch.insert_object(values))
    }

    /// Commit the removal of object `obj` across every shard.
    pub fn remove_object(&self, obj: ObjectId) -> Result<CommitReceipt> {
        self.commit_write(|epoch| epoch.remove_object(obj))
    }

    /// Commit a preference edit across every shard; each shard's cache is
    /// invalidated incrementally (see [`Engine::set_preference`]).
    pub fn set_preference(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<CommitReceipt> {
        self.commit_write(|epoch| epoch.set_preference(dim, a, b, forward, backward))
    }

    /// Derive once from shard 0's epoch, install everywhere under the
    /// epoch gate's write side. A failed write installs nothing anywhere.
    fn commit_write(
        &self,
        write: impl FnOnce(
            &DatasetEpoch<M>,
        ) -> presky_core::error::Result<(DatasetEpoch<M>, WriteEffects)>,
    ) -> Result<CommitReceipt> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.shards[0].pin();
        let (next, effects) = write(&current).map_err(presky_query::error::QueryError::from)?;
        let id = next.id();
        let (table, ctx, prefs) =
            (Arc::clone(next.table()), Arc::clone(next.ctx()), Arc::clone(next.prefs()));
        // Only the installs sit inside the gate: derivation (the expensive
        // part) overlaps with in-flight fan-outs, the swap does not.
        let _gate = self.epoch_gate.write().unwrap_or_else(|e| e.into_inner());
        let mut receipt = self.shards[0].install(next, &effects);
        for shard in &self.shards[1..] {
            let replica = DatasetEpoch::from_parts(
                id,
                Arc::clone(&table),
                Arc::clone(&ctx),
                Arc::clone(&prefs),
            );
            let r = shard.install(replica, &effects);
            receipt.evicted_components += r.evicted_components;
            receipt.evicted_bytes += r.evicted_bytes;
        }
        Ok(receipt)
    }

    /// Serve one request.
    ///
    /// `AllSky` fans out across every shard under the epoch gate and
    /// merges; `SkyOne` routes to the shard owning the target; `Threshold`
    /// and `TopK` delegate to shard 0 (their ladders and scout/refine
    /// phases iterate all objects with cross-object early exits that do
    /// not decompose into independent ranges).
    pub fn run(&self, request: Request) -> Result<Response> {
        match &request.query {
            Query::AllSky { opts } => self.run_all_sky(request.tenant, *opts, request.budget),
            Query::SkyOne { target, .. } => {
                let owner = self
                    .target_ranges(self.n_objects())
                    .iter()
                    .position(|r| r.contains(&target.index()))
                    .unwrap_or(0);
                self.shards[owner].run(request)
            }
            _ => self.shards[0].run(request),
        }
    }

    fn run_all_sky(
        &self,
        tenant: Option<TenantId>,
        opts: QueryOptions,
        budget: Budget,
    ) -> Result<Response> {
        // The cost gate runs once for the whole request (the fan-out
        // would otherwise charge it per shard); attribution goes to
        // shard 0's counters so the fleet totals still balance.
        if let Some(max) = self.opts.max_predicted_cost {
            let query = Query::AllSky { opts };
            let predicted = self.shards[0].predicted_cost(&query);
            if predicted > max {
                let m = self.shards[0].metrics_ref();
                inc(&m.requests);
                inc(&m.shed_cost);
                return Err(ServiceError::CostCeiling { predicted, max });
            }
        }
        // Everything below reads one consistent epoch: the gate keeps
        // commits out until the last shard's slice returns.
        let _gate = self.epoch_gate.read().unwrap_or_else(|e| e.into_inner());
        let epoch = self.shards[0].epoch();
        let n = self.n_objects();
        let ranges = self.target_ranges(n);
        let admitted_at = Instant::now();
        let engine_budget = budget.to_engine_budget(admitted_at);
        let n_shards = self.shards.len();
        let total = presky_core::num_threads(opts.threads);
        let workers = (total / n_shards).max(1);
        let spare = total.saturating_sub(workers * n_shards);
        let pool = ThreadBudget::new(spare);

        let outs: Vec<Result<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&ranges)
                .map(|(shard, range)| {
                    let pool = &pool;
                    scope.spawn(move || {
                        shard.run_all_sky_range(
                            tenant,
                            range.clone(),
                            workers,
                            opts,
                            engine_budget,
                            pool,
                        )
                    })
                })
                .collect();
            // Joining in shard order keeps the merge deterministic; a
            // worker panic propagates from join() as usual.
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });

        let mut results = Vec::with_capacity(n);
        let mut stats = PipelineStats::default();
        let mut truncated = 0;
        for out in outs {
            let out = out?;
            results.extend(out.results);
            stats.merge(&out.stats);
            truncated += out.truncated;
        }
        let outcome = Outcome::classify(Value::AllSky(results), truncated);
        Ok(Response { outcome, stats, elapsed: admitted_at.elapsed(), epoch })
    }

    /// Fleet totals: every shard's snapshot folded with
    /// [`MetricsSnapshot::merge`]. A fanned-out all-sky request appears
    /// as one (admitted, completed) execution **per shard**, and a commit
    /// as one write (with its own retirement) per shard; delegated shapes
    /// count only on their serving shard. The `epoch` gauge merges by max,
    /// so it reports the fleet's (shared) current epoch.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.shards[0].metrics();
        for shard in &self.shards[1..] {
            merged.merge(&shard.metrics());
        }
        merged
    }

    /// Serialize the union of every shard's component cache to `path`,
    /// keyed by the shared fingerprint. Entries are deduplicated by key
    /// (identical keys hold bit-identical values by construction), so the
    /// file is byte-identical to a single-engine snapshot that solved the
    /// same components.
    pub fn save_cache_snapshot(&self, path: &Path) -> Result<()> {
        let union = ComponentCache::with_byte_cap(self.opts.cache_bytes);
        for shard in &self.shards {
            for (key, entry) in shard.cache().sorted_entries() {
                union.insert(&key, entry);
            }
        }
        snapshot::save_to_path(&union, self.shards[0].fingerprint(), path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::types::ObjectId;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;

    fn fixture() -> (Table, TablePreferences) {
        let t =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        (t, TablePreferences::with_default(PrefPair::half()))
    }

    fn all_sky_bits(r: &Response) -> Vec<u64> {
        r.outcome.value().as_all_sky().unwrap().iter().map(|x| x.unwrap().sky.to_bits()).collect()
    }

    #[test]
    fn every_shape_is_served_and_routed() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t, p, EngineOptions::default(), 2).unwrap();
        assert_eq!(e.n_shards(), 2);
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
        assert_eq!(r.epoch, 0);
        let r = e.run(Request::sky_one(ObjectId(4), QueryOptions::default())).unwrap();
        assert!(r.outcome.value().as_sky().is_some());
        let r = e.run(Request::threshold(0.15, ThresholdOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_threshold().unwrap().len(), 5);
        let r = e.run(Request::top_k(2, TopKOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_top_k().unwrap().len(), 2);
        let m = e.metrics();
        // The all-sky fan-out admits once per shard; the three delegated
        // requests once each.
        assert_eq!(m.admitted, 2 + 3);
        assert_eq!(m.completed, m.admitted);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn zero_shards_is_one_shard() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t, p, EngineOptions::default(), 0).unwrap();
        assert_eq!(e.n_shards(), 1);
        assert!(e.run(Request::all_sky(QueryOptions::default())).is_ok());
    }

    #[test]
    fn cost_gate_runs_once_for_the_whole_fan_out() {
        let (t, p) = fixture();
        let e =
            ShardedEngine::new(t, p, EngineOptions::default().with_max_predicted_cost(Some(1)), 4)
                .unwrap();
        let err = e.run(Request::all_sky(QueryOptions::default())).unwrap_err();
        assert!(matches!(err, ServiceError::CostCeiling { .. }));
        let m = e.metrics();
        assert_eq!(m.shed_cost, 1, "one shed for one request, not one per shard");
        assert_eq!(m.requests, 1);
    }

    #[test]
    fn writes_install_epoch_atomically_across_shards_and_rebalance() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t.clone(), p.clone(), EngineOptions::default(), 3).unwrap();
        let receipt = e.insert_object(&[ValueId(3), ValueId(0)]).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.n_objects(), 6);
        let receipt = e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        assert_eq!(receipt.epoch, 2);

        // The fanned-out answer reflects both writes and is bit-identical
        // to a single engine serving the mutated dataset.
        let sharded = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(sharded.epoch, 2);
        assert_eq!(sharded.outcome.value().as_all_sky().unwrap().len(), 6);
        let single = Engine::new(t, p, EngineOptions::default()).unwrap();
        single.insert_object(&[ValueId(3), ValueId(0)]).unwrap();
        single.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        let solo = single.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(all_sky_bits(&sharded), all_sky_bits(&solo));

        let m = e.metrics();
        assert_eq!(m.epoch, 2, "epoch gauge merges by max, not sum");
        assert_eq!(m.writes, 2 * 3, "each commit installs once per shard");
    }

    #[test]
    fn removal_shrinks_the_fan_out_to_the_new_row_count() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t, p, EngineOptions::default(), 2).unwrap();
        e.remove_object(ObjectId(0)).unwrap();
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 4);
        // Routing still lands every remaining target on some shard.
        for i in 0..4 {
            assert!(e.run(Request::sky_one(ObjectId(i), QueryOptions::default())).is_ok());
        }
    }
}
