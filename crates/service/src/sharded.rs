//! Sharded all-sky fan-out: one request, N engines, one bit-identical
//! answer.
//!
//! [`ShardedEngine`] partitions the **targets** of an all-sky batch into
//! contiguous ranges, one per [`Engine`] shard. Coin indexes (the
//! [`BatchCoinContext`]) are *replicated* — every shard holds the full
//! table and can assemble any target's view — because a target's attackers
//! come from the whole dataset, not from its own range. What is
//! partitioned is the work and the mutable state: each shard owns its own
//! component cache, metrics, and admission ceiling.
//!
//! ## Merge invariants
//!
//! An `AllSky` request fans out on scoped threads, each shard solving its
//! range through the query crate's global-index range driver, then merges:
//!
//! * **values** — concatenated in range order. Per-object seed
//!   decorrelation uses the *global* object index, so every slot is
//!   bit-identical to the single-engine run at any shard count;
//! * **stats** — [`PipelineStats::merge`] (additive, max for
//!   `largest_component`), associative, so totals equal the single-engine
//!   totals for every deterministic counter (`cache_hits` depends on which
//!   worker — here, which shard — reached a component first, exactly as it
//!   already depends on thread interleaving within one engine);
//! * **truncation** — summed; the merged withheld-slot set is the union of
//!   the per-shard partials and the [`Outcome`] reclassifies over it.
//!
//! One wall-clock budget is pinned *before* the fan-out, so all shards
//! share an absolute deadline; joint/sample ledgers apply **per shard**
//! (each shard's slice may spend up to the request's ledger).
//!
//! ## Thread allowance
//!
//! The request's thread count is split evenly across shards; the
//! remainder is seeded into one shared [`ThreadBudget`] pot, and a shard
//! whose range cannot use its full grant deposits the difference back, so
//! shards' intra-component DFS leases draw on one machine-wide allowance
//! and never oversubscribe the host.
//!
//! Non-batch shapes don't fan out: `SkyOne` routes to the shard owning
//! the target (any shard could answer; routing spreads load and cache
//! residency), `Threshold` and `TopK` delegate to shard 0. All delegated
//! shapes keep the full single-engine path, coalescing included.

use std::ops::Range;
use std::path::Path;
use std::time::Instant;

use presky_core::batch::BatchCoinContext;
use presky_core::pool::ThreadBudget;
use presky_core::preference::PreferenceModel;
use presky_core::table::Table;

use presky_exact::cache::ComponentCache;
use presky_exact::snapshot;
use presky_query::engine::PipelineStats;
use presky_query::prob_skyline::QueryOptions;

use crate::engine::{Engine, EngineOptions};
use crate::error::{Result, ServiceError};
use crate::metrics::{inc, MetricsSnapshot};
use crate::request::{Budget, Outcome, Query, Request, Response, Value};

/// N [`Engine`] shards serving one dataset, fanning all-sky requests
/// across them. See the [module docs](self) for the partitioning and
/// merge invariants.
#[derive(Debug)]
pub struct ShardedEngine<M> {
    shards: Vec<Engine<M>>,
    ranges: Vec<Range<usize>>,
    opts: EngineOptions,
}

impl<M: PreferenceModel + Sync + Clone> ShardedEngine<M> {
    /// Build the context once, replicate it across `n_shards` engines,
    /// and assign each a contiguous target range (`0` shards is treated
    /// as `1`).
    pub fn new(table: Table, prefs: M, opts: EngineOptions, n_shards: usize) -> Result<Self> {
        let n_shards = n_shards.max(1);
        let ctx = BatchCoinContext::build(&table).map_err(presky_query::error::QueryError::from)?;
        let n = ctx.n_objects();
        let mut shards = Vec::with_capacity(n_shards);
        let mut ranges = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            ranges.push(s * n / n_shards..(s + 1) * n / n_shards);
            shards.push(Engine::with_parts(table.clone(), prefs.clone(), ctx.clone(), opts));
        }
        Ok(Self { shards, ranges, opts })
    }

    /// [`ShardedEngine::new`], then warm every shard's cache from the
    /// same snapshot file. Each shard verifies the fingerprint; entries
    /// a shard's range never probes simply sit idle under its byte cap.
    pub fn with_warm_cache(
        table: Table,
        prefs: M,
        opts: EngineOptions,
        n_shards: usize,
        path: &Path,
    ) -> Result<Self> {
        let mut this = Self::new(table, prefs, opts, n_shards)?;
        for shard in &mut this.shards {
            shard.load_cache_from(path)?;
        }
        Ok(this)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Objects in the dataset.
    pub fn n_objects(&self) -> usize {
        self.shards[0].n_objects()
    }

    /// Serve one request.
    ///
    /// `AllSky` fans out across every shard and merges; `SkyOne` routes
    /// to the shard owning the target; `Threshold` and `TopK` delegate to
    /// shard 0 (their ladders and scout/refine phases iterate all objects
    /// with cross-object early exits that do not decompose into
    /// independent ranges).
    pub fn run(&self, request: Request) -> Result<Response> {
        match &request.query {
            Query::AllSky { opts } => self.run_all_sky(*opts, request.budget),
            Query::SkyOne { target, .. } => {
                let owner =
                    self.ranges.iter().position(|r| r.contains(&target.index())).unwrap_or(0);
                self.shards[owner].run(request)
            }
            _ => self.shards[0].run(request),
        }
    }

    fn run_all_sky(&self, opts: QueryOptions, budget: Budget) -> Result<Response> {
        // The cost gate runs once for the whole request (the fan-out
        // would otherwise charge it per shard); attribution goes to
        // shard 0's counters so the fleet totals still balance.
        if let Some(max) = self.opts.max_predicted_cost {
            let query = Query::AllSky { opts };
            let predicted = self.shards[0].predicted_cost(&query);
            if predicted > max {
                let m = self.shards[0].metrics_ref();
                inc(&m.requests);
                inc(&m.shed_cost);
                return Err(ServiceError::CostCeiling { predicted, max });
            }
        }
        let admitted_at = Instant::now();
        let engine_budget = budget.to_engine_budget(admitted_at);
        let n_shards = self.shards.len();
        let total = presky_core::num_threads(opts.threads);
        let workers = (total / n_shards).max(1);
        let spare = total.saturating_sub(workers * n_shards);
        let pool = ThreadBudget::new(spare);

        let outs: Vec<Result<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&self.ranges)
                .map(|(shard, range)| {
                    let pool = &pool;
                    scope.spawn(move || {
                        shard.run_all_sky_range(range.clone(), workers, opts, engine_budget, pool)
                    })
                })
                .collect();
            // Joining in shard order keeps the merge deterministic; a
            // worker panic propagates from join() as usual.
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });

        let mut results = Vec::with_capacity(self.n_objects());
        let mut stats = PipelineStats::default();
        let mut truncated = 0;
        for out in outs {
            let out = out?;
            results.extend(out.results);
            stats.merge(&out.stats);
            truncated += out.truncated;
        }
        let outcome = Outcome::classify(Value::AllSky(results), truncated);
        Ok(Response { outcome, stats, elapsed: admitted_at.elapsed() })
    }

    /// Fleet totals: every shard's snapshot folded with
    /// [`MetricsSnapshot::merge`]. A fanned-out all-sky request appears
    /// as one (admitted, completed) execution **per shard**; delegated
    /// shapes count only on their serving shard.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.shards[0].metrics();
        for shard in &self.shards[1..] {
            merged.merge(&shard.metrics());
        }
        merged
    }

    /// Serialize the union of every shard's component cache to `path`,
    /// keyed by the shared fingerprint. Entries are deduplicated by key
    /// (identical keys hold bit-identical values by construction), so the
    /// file is byte-identical to a single-engine snapshot that solved the
    /// same components.
    pub fn save_cache_snapshot(&self, path: &Path) -> Result<()> {
        let union = ComponentCache::with_byte_cap(self.opts.cache_bytes);
        for shard in &self.shards {
            for (key, entry) in shard.cache().sorted_entries() {
                union.insert(&key, entry);
            }
        }
        snapshot::save_to_path(&union, self.shards[0].fingerprint(), path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::types::ObjectId;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;

    fn fixture() -> (Table, TablePreferences) {
        let t =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        (t, TablePreferences::with_default(PrefPair::half()))
    }

    #[test]
    fn every_shape_is_served_and_routed() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t, p, EngineOptions::default(), 2).unwrap();
        assert_eq!(e.n_shards(), 2);
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
        let r = e.run(Request::sky_one(ObjectId(4), QueryOptions::default())).unwrap();
        assert!(r.outcome.value().as_sky().is_some());
        let r = e.run(Request::threshold(0.15, ThresholdOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_threshold().unwrap().len(), 5);
        let r = e.run(Request::top_k(2, TopKOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_top_k().unwrap().len(), 2);
        let m = e.metrics();
        // The all-sky fan-out admits once per shard; the three delegated
        // requests once each.
        assert_eq!(m.admitted, 2 + 3);
        assert_eq!(m.completed, m.admitted);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn zero_shards_is_one_shard() {
        let (t, p) = fixture();
        let e = ShardedEngine::new(t, p, EngineOptions::default(), 0).unwrap();
        assert_eq!(e.n_shards(), 1);
        assert!(e.run(Request::all_sky(QueryOptions::default())).is_ok());
    }

    #[test]
    fn cost_gate_runs_once_for_the_whole_fan_out() {
        let (t, p) = fixture();
        let e =
            ShardedEngine::new(t, p, EngineOptions::default().with_max_predicted_cost(Some(1)), 4)
                .unwrap();
        let err = e.run(Request::all_sky(QueryOptions::default())).unwrap_err();
        assert!(matches!(err, ServiceError::CostCeiling { .. }));
        let m = e.metrics();
        assert_eq!(m.shed_cost, 1, "one shed for one request, not one per shard");
        assert_eq!(m.requests, 1);
    }
}
