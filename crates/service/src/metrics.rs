//! Engine observability: lock-free counters plus a merged
//! [`PipelineStats`] accumulator, snapshotted on demand.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use presky_query::engine::PipelineStats;

/// Internal counter block of a live engine. All counters are monotone;
/// readers take a coherent-enough snapshot without stopping traffic.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    /// Requests submitted to `run` (each submission counted exactly once,
    /// whatever its fate: admitted, coalesced, shed, or failed).
    pub(crate) requests: AtomicU64,
    /// Requests admitted (work actually started).
    pub(crate) admitted: AtomicU64,
    /// Admitted requests that produced a `Response`.
    pub(crate) completed: AtomicU64,
    /// Requests answered from a concurrent identical leader's response
    /// (no work of their own was admitted or executed).
    pub(crate) coalesced: AtomicU64,
    /// Admitted requests that executed on behalf of at least one follower.
    pub(crate) coalesce_led: AtomicU64,
    /// Admitted requests whose outcome was `DeadlineExceeded`.
    pub(crate) deadline_misses: AtomicU64,
    /// Requests shed by the in-flight ceiling.
    pub(crate) shed_overload: AtomicU64,
    /// Requests shed by the predicted-cost ceiling.
    pub(crate) shed_cost: AtomicU64,
    /// Requests that returned a query-layer error.
    pub(crate) failed: AtomicU64,
    /// Write commits installed (each producing a new dataset epoch).
    pub(crate) writes: AtomicU64,
    /// Component-cache entries evicted by write invalidation.
    pub(crate) evicted_components: AtomicU64,
    /// Component-cache bytes evicted by write invalidation.
    pub(crate) evicted_bytes: AtomicU64,
    /// Cache hits of tenanted requests that landed on base-signature
    /// entries — the cross-user shared ones (see
    /// [`MetricsSnapshot::cross_user_hits`]).
    pub(crate) cross_user_hits: AtomicU64,
    /// Per-tenant counters, keyed by tenant id.
    tenants: Mutex<HashMap<u64, TenantMetrics>>,
    /// Pipeline counters merged across every completed request.
    stats: Mutex<PipelineStats>,
}

impl Metrics {
    /// Fold one request's pipeline counters into the engine totals.
    ///
    /// A panicking query worker can poison this mutex; the counters are
    /// plain-old-data whose worst corruption is a partially-merged stats
    /// block, so recovery (rather than propagating the panic to every
    /// later request) is the right call.
    pub(crate) fn merge_stats(&self, stats: &PipelineStats) {
        let mut guard = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        guard.merge(stats);
    }

    pub(crate) fn stats_snapshot(&self) -> PipelineStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bump one tenant's counters (zero deltas are free).
    pub(crate) fn tenant_add(&self, tenant: u64, f: impl FnOnce(&mut TenantMetrics)) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let entry = tenants
            .entry(tenant)
            .or_insert_with(|| TenantMetrics { tenant, ..TenantMetrics::default() });
        f(entry);
    }

    /// Per-tenant counters sorted by tenant id.
    pub(crate) fn tenants_snapshot(&self) -> Vec<TenantMetrics> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<TenantMetrics> = tenants.values().copied().collect();
        rows.sort_unstable_by_key(|t| t.tenant);
        rows
    }
}

/// One tenant's request and cache counters, as surfaced in
/// [`MetricsSnapshot::tenants`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TenantMetrics {
    /// The tenant id these counters belong to.
    pub tenant: u64,
    /// Requests submitted on behalf of this tenant.
    pub requests: u64,
    /// Component-cache probes issued by this tenant's completed requests.
    pub cache_probes: u64,
    /// Component-cache hits of this tenant's completed requests.
    pub cache_hits: u64,
    /// Submissions of this tenant answered from a coalesced leader.
    pub coalesced: u64,
}

impl TenantMetrics {
    /// Fold another tenant's-worth of counters (same id) into this one.
    fn merge(&mut self, other: &TenantMetrics) {
        self.requests += other.requests;
        self.cache_probes += other.cache_probes;
        self.cache_hits += other.cache_hits;
        self.coalesced += other.coalesced;
    }
}

/// A point-in-time view of a live engine's counters.
///
/// Counters are read individually (relaxed), so a snapshot taken under
/// load may be a few requests out of phase with itself; each individual
/// counter is exact.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Requests submitted, each counted exactly once: every submission
    /// ends up in exactly one of `completed`, `coalesced`, the shed
    /// counters, or `failed` — never two (regression-tested against the
    /// old double-count of a shed-after-admission request).
    pub requests: u64,
    /// Requests admitted (work actually started).
    pub admitted: u64,
    /// Admitted requests that produced a [`Response`](crate::Response).
    pub completed: u64,
    /// Requests answered from a concurrent identical leader's response.
    pub coalesced: u64,
    /// Admitted requests that executed on behalf of ≥ 1 follower.
    pub coalesce_led: u64,
    /// Admitted requests that concluded `DeadlineExceeded`.
    pub deadline_misses: u64,
    /// Requests shed by the in-flight ceiling.
    pub shed_overload: u64,
    /// Requests shed by the predicted-cost ceiling.
    pub shed_cost: u64,
    /// Requests that returned a query-layer error.
    pub failed: u64,
    /// The current dataset epoch (0 until the first write commits). A
    /// gauge, not a counter: [`merge`](Self::merge) takes the max.
    pub epoch: u64,
    /// Write commits installed (each producing a new dataset epoch).
    pub writes: u64,
    /// Superseded epochs fully retired (last pinned reader drained).
    pub epochs_retired: u64,
    /// Component-cache entries evicted by write invalidation.
    pub evicted_components: u64,
    /// Component-cache bytes evicted by write invalidation.
    pub evicted_bytes: u64,
    /// Requests running at snapshot time.
    pub in_flight: usize,
    /// Pipeline counters merged across every completed request.
    pub stats: PipelineStats,
    /// Entries resident in the cross-request component cache.
    pub cache_entries: usize,
    /// Bytes resident in the cross-request component cache.
    pub cache_bytes: u64,
    /// Cache hits of **tenanted** requests that landed on base-signature
    /// entries (no overlay-touched coin embedded, no tenant namespace):
    /// the hits any other tenant could equally have produced — the
    /// cross-user sharing the multi-tenant design banks on. Hits on
    /// overlay-touched (tenant-private) components are counted in
    /// `stats.cache_hits` but not here.
    pub cross_user_hits: u64,
    /// Per-tenant counters, sorted by tenant id. Only tenants that have
    /// submitted at least one request appear.
    pub tenants: Vec<TenantMetrics>,
}

impl MetricsSnapshot {
    /// Requests shed by either admission gate.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_cost
    }

    /// Component-cache hits as a fraction of probes, across all requests
    /// served so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.cache_hit_rate()
    }

    /// Cross-user hits as a fraction of the cache probes issued by
    /// tenanted requests (0 when no tenanted request has probed yet).
    /// This is the headline multi-tenant number: the fraction of
    /// per-tenant cache traffic served by components shared across users.
    pub fn cross_user_hit_rate(&self) -> f64 {
        let probes: u64 = self.tenants.iter().map(|t| t.cache_probes).sum();
        if probes == 0 {
            0.0
        } else {
            self.cross_user_hits as f64 / probes as f64
        }
    }

    /// Fold another engine's snapshot into this one — how a sharded
    /// deployment reports fleet totals. Counters and pipeline stats are
    /// additive (`largest_component` by max, as in
    /// [`PipelineStats::merge`]); cache occupancy sums across the
    /// per-shard caches.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.requests += other.requests;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.coalesced += other.coalesced;
        self.coalesce_led += other.coalesce_led;
        self.deadline_misses += other.deadline_misses;
        self.shed_overload += other.shed_overload;
        self.shed_cost += other.shed_cost;
        self.failed += other.failed;
        self.epoch = self.epoch.max(other.epoch);
        self.writes += other.writes;
        self.epochs_retired += other.epochs_retired;
        self.evicted_components += other.evicted_components;
        self.evicted_bytes += other.evicted_bytes;
        self.in_flight += other.in_flight;
        self.stats.merge(&other.stats);
        self.cache_entries += other.cache_entries;
        self.cache_bytes += other.cache_bytes;
        self.cross_user_hits += other.cross_user_hits;
        for t in &other.tenants {
            match self.tenants.iter_mut().find(|mine| mine.tenant == t.tenant) {
                Some(mine) => mine.merge(t),
                None => self.tenants.push(*t),
            }
        }
        self.tenants.sort_unstable_by_key(|t| t.tenant);
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} admitted, {} completed, {} coalesced ({} leaders), {} deadline-missed, {} shed ({} overload / {} cost), {} failed, {} in flight",
            self.requests,
            self.admitted,
            self.completed,
            self.coalesced,
            self.coalesce_led,
            self.deadline_misses,
            self.shed(),
            self.shed_overload,
            self.shed_cost,
            self.failed,
            self.in_flight,
        )?;
        writeln!(
            f,
            "epochs:   at {}, {} writes, {} retired, invalidated {} components ({} bytes)",
            self.epoch,
            self.writes,
            self.epochs_retired,
            self.evicted_components,
            self.evicted_bytes,
        )?;
        writeln!(
            f,
            "cache:    {} entries, {} bytes, hit rate {:.1}% ({} hits / {} probes)",
            self.cache_entries,
            self.cache_bytes,
            100.0 * self.cache_hit_rate(),
            self.stats.cache_hits,
            self.stats.cache_probes,
        )?;
        if !self.tenants.is_empty() {
            let requests: u64 = self.tenants.iter().map(|t| t.requests).sum();
            let probes: u64 = self.tenants.iter().map(|t| t.cache_probes).sum();
            writeln!(
                f,
                "tenants:  {} active, {} requests, cross-user hit rate {:.1}% ({} / {} probes)",
                self.tenants.len(),
                requests,
                100.0 * self.cross_user_hit_rate(),
                self.cross_user_hits,
                probes,
            )?;
        }
        write!(f, "{}", self.stats)
    }
}

/// Bump a counter.
pub(crate) fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Read a counter.
pub(crate) fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_display_mentions_every_counter_block() {
        let snap = MetricsSnapshot {
            requests: 15,
            admitted: 10,
            completed: 8,
            coalesced: 6,
            coalesce_led: 2,
            deadline_misses: 2,
            shed_overload: 1,
            shed_cost: 3,
            failed: 0,
            epoch: 4,
            writes: 4,
            epochs_retired: 3,
            evicted_components: 7,
            evicted_bytes: 512,
            in_flight: 0,
            stats: PipelineStats::default(),
            cache_entries: 5,
            cache_bytes: 1234,
            cross_user_hits: 0,
            tenants: Vec::new(),
        };
        assert_eq!(snap.shed(), 4);
        let s = snap.to_string();
        assert!(s.contains("15 submitted"));
        assert!(s.contains("10 admitted"));
        assert!(s.contains("6 coalesced (2 leaders)"));
        assert!(s.contains("at 4, 4 writes, 3 retired"));
        assert!(s.contains("invalidated 7 components (512 bytes)"));
        assert!(s.contains("hit rate"));
    }

    #[test]
    fn snapshot_merge_sums_counters_and_caches() {
        let mut a = MetricsSnapshot {
            requests: 5,
            admitted: 4,
            completed: 4,
            coalesced: 1,
            coalesce_led: 1,
            deadline_misses: 0,
            shed_overload: 0,
            shed_cost: 0,
            failed: 0,
            epoch: 2,
            writes: 2,
            epochs_retired: 1,
            evicted_components: 4,
            evicted_bytes: 40,
            in_flight: 1,
            stats: PipelineStats { objects: 3, largest_component: 2, ..Default::default() },
            cache_entries: 10,
            cache_bytes: 100,
            cross_user_hits: 6,
            tenants: vec![
                TenantMetrics {
                    tenant: 1,
                    requests: 2,
                    cache_probes: 8,
                    cache_hits: 7,
                    coalesced: 0,
                },
                TenantMetrics {
                    tenant: 3,
                    requests: 1,
                    cache_probes: 2,
                    cache_hits: 1,
                    coalesced: 1,
                },
            ],
        };
        let b = MetricsSnapshot {
            epoch: 5,
            stats: PipelineStats { objects: 7, largest_component: 9, ..Default::default() },
            cache_entries: 2,
            cache_bytes: 20,
            cross_user_hits: 4,
            tenants: vec![TenantMetrics {
                tenant: 2,
                requests: 5,
                cache_probes: 10,
                cache_hits: 9,
                coalesced: 2,
            }],
            ..a.clone()
        };
        a.merge(&b);
        assert_eq!(a.requests, 10);
        assert_eq!(a.coalesced, 2);
        assert_eq!(a.in_flight, 2);
        assert_eq!(a.epoch, 5, "epoch is a gauge: merge takes the max");
        assert_eq!(a.writes, 4);
        assert_eq!(a.epochs_retired, 2);
        assert_eq!(a.evicted_components, 8);
        assert_eq!(a.evicted_bytes, 80);
        assert_eq!(a.stats.objects, 10);
        assert_eq!(a.stats.largest_component, 9);
        assert_eq!(a.cache_entries, 12);
        assert_eq!(a.cache_bytes, 120);
        assert_eq!(a.cross_user_hits, 10);
        assert_eq!(a.tenants.len(), 3, "disjoint tenant rows concatenate");
        assert_eq!(a.tenants[1].tenant, 2);
        assert!((a.cross_user_hit_rate() - 10.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn tenant_rows_with_matching_ids_fold_together() {
        let row = |probes, hits| TenantMetrics {
            tenant: 7,
            requests: 1,
            cache_probes: probes,
            cache_hits: hits,
            coalesced: 0,
        };
        let mut a = MetricsSnapshot {
            requests: 1,
            admitted: 1,
            completed: 1,
            coalesced: 0,
            coalesce_led: 0,
            deadline_misses: 0,
            shed_overload: 0,
            shed_cost: 0,
            failed: 0,
            epoch: 0,
            writes: 0,
            epochs_retired: 0,
            evicted_components: 0,
            evicted_bytes: 0,
            in_flight: 0,
            stats: PipelineStats::default(),
            cache_entries: 0,
            cache_bytes: 0,
            cross_user_hits: 3,
            tenants: vec![row(4, 3)],
        };
        let b = MetricsSnapshot { cross_user_hits: 2, tenants: vec![row(2, 2)], ..a.clone() };
        a.merge(&b);
        assert_eq!(a.tenants.len(), 1);
        assert_eq!(a.tenants[0].requests, 2);
        assert_eq!(a.tenants[0].cache_probes, 6);
        assert_eq!(a.tenants[0].cache_hits, 5);
        assert_eq!(a.cross_user_hits, 5);
        let shown = a.to_string();
        assert!(shown.contains("tenants:  1 active"), "display: {shown}");
    }

    #[test]
    fn poisoned_stats_mutex_recovers() {
        let m = std::sync::Arc::new(Metrics::default());
        let m2 = m.clone();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = m2.stats.lock().unwrap();
            panic!("poison");
        })
        .join();
        let one = PipelineStats { objects: 1, ..Default::default() };
        m.merge_stats(&one);
        assert_eq!(m.stats_snapshot().objects, 1);
    }
}
