//! Engine observability: lock-free counters plus a merged
//! [`PipelineStats`] accumulator, snapshotted on demand.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use presky_query::engine::PipelineStats;

/// Internal counter block of a live engine. All counters are monotone;
/// readers take a coherent-enough snapshot without stopping traffic.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    /// Requests submitted to `run` (each submission counted exactly once,
    /// whatever its fate: admitted, coalesced, shed, or failed).
    pub(crate) requests: AtomicU64,
    /// Requests admitted (work actually started).
    pub(crate) admitted: AtomicU64,
    /// Admitted requests that produced a `Response`.
    pub(crate) completed: AtomicU64,
    /// Requests answered from a concurrent identical leader's response
    /// (no work of their own was admitted or executed).
    pub(crate) coalesced: AtomicU64,
    /// Admitted requests that executed on behalf of at least one follower.
    pub(crate) coalesce_led: AtomicU64,
    /// Admitted requests whose outcome was `DeadlineExceeded`.
    pub(crate) deadline_misses: AtomicU64,
    /// Requests shed by the in-flight ceiling.
    pub(crate) shed_overload: AtomicU64,
    /// Requests shed by the predicted-cost ceiling.
    pub(crate) shed_cost: AtomicU64,
    /// Requests that returned a query-layer error.
    pub(crate) failed: AtomicU64,
    /// Write commits installed (each producing a new dataset epoch).
    pub(crate) writes: AtomicU64,
    /// Component-cache entries evicted by write invalidation.
    pub(crate) evicted_components: AtomicU64,
    /// Component-cache bytes evicted by write invalidation.
    pub(crate) evicted_bytes: AtomicU64,
    /// Pipeline counters merged across every completed request.
    stats: Mutex<PipelineStats>,
}

impl Metrics {
    /// Fold one request's pipeline counters into the engine totals.
    ///
    /// A panicking query worker can poison this mutex; the counters are
    /// plain-old-data whose worst corruption is a partially-merged stats
    /// block, so recovery (rather than propagating the panic to every
    /// later request) is the right call.
    pub(crate) fn merge_stats(&self, stats: &PipelineStats) {
        let mut guard = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        guard.merge(stats);
    }

    pub(crate) fn stats_snapshot(&self) -> PipelineStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A point-in-time view of a live engine's counters.
///
/// Counters are read individually (relaxed), so a snapshot taken under
/// load may be a few requests out of phase with itself; each individual
/// counter is exact.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Requests submitted, each counted exactly once: every submission
    /// ends up in exactly one of `completed`, `coalesced`, the shed
    /// counters, or `failed` — never two (regression-tested against the
    /// old double-count of a shed-after-admission request).
    pub requests: u64,
    /// Requests admitted (work actually started).
    pub admitted: u64,
    /// Admitted requests that produced a [`Response`](crate::Response).
    pub completed: u64,
    /// Requests answered from a concurrent identical leader's response.
    pub coalesced: u64,
    /// Admitted requests that executed on behalf of ≥ 1 follower.
    pub coalesce_led: u64,
    /// Admitted requests that concluded `DeadlineExceeded`.
    pub deadline_misses: u64,
    /// Requests shed by the in-flight ceiling.
    pub shed_overload: u64,
    /// Requests shed by the predicted-cost ceiling.
    pub shed_cost: u64,
    /// Requests that returned a query-layer error.
    pub failed: u64,
    /// The current dataset epoch (0 until the first write commits). A
    /// gauge, not a counter: [`merge`](Self::merge) takes the max.
    pub epoch: u64,
    /// Write commits installed (each producing a new dataset epoch).
    pub writes: u64,
    /// Superseded epochs fully retired (last pinned reader drained).
    pub epochs_retired: u64,
    /// Component-cache entries evicted by write invalidation.
    pub evicted_components: u64,
    /// Component-cache bytes evicted by write invalidation.
    pub evicted_bytes: u64,
    /// Requests running at snapshot time.
    pub in_flight: usize,
    /// Pipeline counters merged across every completed request.
    pub stats: PipelineStats,
    /// Entries resident in the cross-request component cache.
    pub cache_entries: usize,
    /// Bytes resident in the cross-request component cache.
    pub cache_bytes: u64,
}

impl MetricsSnapshot {
    /// Requests shed by either admission gate.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_cost
    }

    /// Component-cache hits as a fraction of probes, across all requests
    /// served so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.cache_hit_rate()
    }

    /// Fold another engine's snapshot into this one — how a sharded
    /// deployment reports fleet totals. Counters and pipeline stats are
    /// additive (`largest_component` by max, as in
    /// [`PipelineStats::merge`]); cache occupancy sums across the
    /// per-shard caches.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.requests += other.requests;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.coalesced += other.coalesced;
        self.coalesce_led += other.coalesce_led;
        self.deadline_misses += other.deadline_misses;
        self.shed_overload += other.shed_overload;
        self.shed_cost += other.shed_cost;
        self.failed += other.failed;
        self.epoch = self.epoch.max(other.epoch);
        self.writes += other.writes;
        self.epochs_retired += other.epochs_retired;
        self.evicted_components += other.evicted_components;
        self.evicted_bytes += other.evicted_bytes;
        self.in_flight += other.in_flight;
        self.stats.merge(&other.stats);
        self.cache_entries += other.cache_entries;
        self.cache_bytes += other.cache_bytes;
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} admitted, {} completed, {} coalesced ({} leaders), {} deadline-missed, {} shed ({} overload / {} cost), {} failed, {} in flight",
            self.requests,
            self.admitted,
            self.completed,
            self.coalesced,
            self.coalesce_led,
            self.deadline_misses,
            self.shed(),
            self.shed_overload,
            self.shed_cost,
            self.failed,
            self.in_flight,
        )?;
        writeln!(
            f,
            "epochs:   at {}, {} writes, {} retired, invalidated {} components ({} bytes)",
            self.epoch,
            self.writes,
            self.epochs_retired,
            self.evicted_components,
            self.evicted_bytes,
        )?;
        writeln!(
            f,
            "cache:    {} entries, {} bytes, hit rate {:.1}% ({} hits / {} probes)",
            self.cache_entries,
            self.cache_bytes,
            100.0 * self.cache_hit_rate(),
            self.stats.cache_hits,
            self.stats.cache_probes,
        )?;
        write!(f, "{}", self.stats)
    }
}

/// Bump a counter.
pub(crate) fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Read a counter.
pub(crate) fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_display_mentions_every_counter_block() {
        let snap = MetricsSnapshot {
            requests: 15,
            admitted: 10,
            completed: 8,
            coalesced: 6,
            coalesce_led: 2,
            deadline_misses: 2,
            shed_overload: 1,
            shed_cost: 3,
            failed: 0,
            epoch: 4,
            writes: 4,
            epochs_retired: 3,
            evicted_components: 7,
            evicted_bytes: 512,
            in_flight: 0,
            stats: PipelineStats::default(),
            cache_entries: 5,
            cache_bytes: 1234,
        };
        assert_eq!(snap.shed(), 4);
        let s = snap.to_string();
        assert!(s.contains("15 submitted"));
        assert!(s.contains("10 admitted"));
        assert!(s.contains("6 coalesced (2 leaders)"));
        assert!(s.contains("at 4, 4 writes, 3 retired"));
        assert!(s.contains("invalidated 7 components (512 bytes)"));
        assert!(s.contains("hit rate"));
    }

    #[test]
    fn snapshot_merge_sums_counters_and_caches() {
        let mut a = MetricsSnapshot {
            requests: 5,
            admitted: 4,
            completed: 4,
            coalesced: 1,
            coalesce_led: 1,
            deadline_misses: 0,
            shed_overload: 0,
            shed_cost: 0,
            failed: 0,
            epoch: 2,
            writes: 2,
            epochs_retired: 1,
            evicted_components: 4,
            evicted_bytes: 40,
            in_flight: 1,
            stats: PipelineStats { objects: 3, largest_component: 2, ..Default::default() },
            cache_entries: 10,
            cache_bytes: 100,
        };
        let b = MetricsSnapshot {
            epoch: 5,
            stats: PipelineStats { objects: 7, largest_component: 9, ..Default::default() },
            cache_entries: 2,
            cache_bytes: 20,
            ..a.clone()
        };
        a.merge(&b);
        assert_eq!(a.requests, 10);
        assert_eq!(a.coalesced, 2);
        assert_eq!(a.in_flight, 2);
        assert_eq!(a.epoch, 5, "epoch is a gauge: merge takes the max");
        assert_eq!(a.writes, 4);
        assert_eq!(a.epochs_retired, 2);
        assert_eq!(a.evicted_components, 8);
        assert_eq!(a.evicted_bytes, 80);
        assert_eq!(a.stats.objects, 10);
        assert_eq!(a.stats.largest_component, 9);
        assert_eq!(a.cache_entries, 12);
        assert_eq!(a.cache_bytes, 120);
    }

    #[test]
    fn poisoned_stats_mutex_recovers() {
        let m = std::sync::Arc::new(Metrics::default());
        let m2 = m.clone();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = m2.stats.lock().unwrap();
            panic!("poison");
        })
        .join();
        let one = PipelineStats { objects: 1, ..Default::default() };
        m.merge_stats(&one);
        assert_eq!(m.stats_snapshot().objects, 1);
    }
}
