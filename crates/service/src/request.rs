//! The unified request API: one [`Request`] type for every query shape,
//! one [`Response`] with a typed [`Outcome`].
//!
//! A request is *what to compute* ([`Query`]) plus *how much it may cost*
//! ([`Budget`]). Budgets are expressed as relative durations and work
//! ceilings; the engine converts them to an absolute
//! [`presky_query::engine::EngineBudget`] at admission time,
//! so a request value can be built once and replayed.

use std::time::{Duration, Instant};

use presky_core::types::ObjectId;

use crate::tenant::TenantId;

use presky_query::engine::{
    ElicitOptions, ElicitationCandidate, EngineBudget, PipelineStats, SensitivityOptions,
    TargetSensitivity,
};
use presky_query::prob_skyline::{QueryOptions, SkyResult};
use presky_query::threshold::{Resolution, ThresholdAnswer, ThresholdOptions};
use presky_query::topk::TopKOptions;

/// Per-request work budget, relative to admission time.
///
/// The default is unlimited: the request runs to completion and the
/// answer is bit-identical to the corresponding one-shot entry point.
/// Every limit is enforced at chunk granularity (8192 joints in the exact
/// DFS, 64-world blocks in the samplers, object boundaries for the
/// request-wide ledgers); a tripped budget never yields a wrong value —
/// the affected slots are simply absent and counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Budget {
    /// Wall-clock allowance, measured from admission.
    pub deadline: Option<Duration>,
    /// Request-wide inclusion–exclusion joint ceiling.
    pub max_joints: Option<u64>,
    /// Request-wide Monte-Carlo world ceiling.
    pub max_samples: Option<u64>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Chainable: set (or clear) the wall-clock allowance.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Chainable: set (or clear) the joint ceiling.
    pub fn with_max_joints(mut self, max_joints: Option<u64>) -> Self {
        self.max_joints = max_joints;
        self
    }

    /// Chainable: set (or clear) the sampled-world ceiling.
    pub fn with_max_samples(mut self, max_samples: Option<u64>) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// Whether this budget constrains anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_joints.is_none() && self.max_samples.is_none()
    }

    /// Whether a request run under `self` is at least as complete as one
    /// run under `follower` — the single-flight coalescing rule.
    ///
    /// Field-wise: an unlimited field covers anything; a limited field
    /// never covers an unlimited one; two limits cover in `≥` order. A
    /// follower whose budget is covered can take the leader's response as
    /// its own (every slot the follower's solo run would have produced is
    /// present, bit-identical); one that is not covered must run solo.
    pub fn covers(&self, follower: &Budget) -> bool {
        fn field<T: PartialOrd>(leader: Option<T>, follower: Option<T>) -> bool {
            match (leader, follower) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(l), Some(f)) => l >= f,
            }
        }
        field(self.deadline, follower.deadline)
            && field(self.max_joints, follower.max_joints)
            && field(self.max_samples, follower.max_samples)
    }

    /// Pin the relative budget to an absolute engine budget at `now`.
    pub(crate) fn to_engine_budget(self, now: Instant) -> EngineBudget {
        EngineBudget::default()
            .with_deadline_at(self.deadline.map(|d| now + d))
            .with_max_joints(self.max_joints)
            .with_max_samples(self.max_samples)
    }
}

/// What to compute.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Query {
    /// One object's skyline probability.
    SkyOne {
        /// The object.
        target: ObjectId,
        /// Algorithm policy.
        opts: QueryOptions,
    },
    /// Every object's skyline probability.
    AllSky {
        /// Algorithm policy.
        opts: QueryOptions,
    },
    /// Membership of every object in the τ-skyline.
    Threshold {
        /// The probability threshold.
        tau: f64,
        /// Ladder configuration.
        opts: ThresholdOptions,
    },
    /// The k objects of largest skyline probability.
    TopK {
        /// How many objects to return.
        k: usize,
        /// Scout/refine configuration.
        opts: TopKOptions,
    },
    /// Exact per-coin partial derivatives ∂sky/∂Pr(a≺b) — one object or
    /// every object, always through the exact pipeline.
    Sensitivity {
        /// `Some` for one object's gradient, `None` for every object's.
        target: Option<ObjectId>,
        /// Gradient-pass configuration.
        opts: SensitivityOptions,
    },
    /// Preference pairs ranked by value of information: the expected
    /// skyline churn from resolving each still-uncertain comparison.
    ElicitationRank {
        /// Sweep and ranking configuration.
        opts: ElicitOptions,
    },
}

/// One unit of service work: a [`Query`] under a [`Budget`], optionally
/// on behalf of a registered tenant.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Request {
    /// What to compute.
    pub query: Query,
    /// How much it may cost.
    pub budget: Budget,
    /// Whose preferences to compute under: `None` answers from the base
    /// model; `Some` resolves the tenant's registered overlay over the
    /// pinned epoch's base model. A registered tenant with an **empty**
    /// overlay is contractually byte-identical to `None`. An unregistered
    /// tenant is refused with
    /// [`ServiceError::UnknownTenant`](crate::ServiceError::UnknownTenant).
    pub tenant: Option<TenantId>,
}

impl Request {
    /// A single-object skyline-probability request.
    pub fn sky_one(target: ObjectId, opts: QueryOptions) -> Self {
        Self { query: Query::SkyOne { target, opts }, budget: Budget::default(), tenant: None }
    }

    /// An all-objects skyline-probability request.
    pub fn all_sky(opts: QueryOptions) -> Self {
        Self { query: Query::AllSky { opts }, budget: Budget::default(), tenant: None }
    }

    /// A τ-skyline membership request.
    pub fn threshold(tau: f64, opts: ThresholdOptions) -> Self {
        Self { query: Query::Threshold { tau, opts }, budget: Budget::default(), tenant: None }
    }

    /// A top-k request.
    pub fn top_k(k: usize, opts: TopKOptions) -> Self {
        Self { query: Query::TopK { k, opts }, budget: Budget::default(), tenant: None }
    }

    /// A sensitivity (gradient) request: `Some` target for one object,
    /// `None` for every object.
    pub fn sensitivity(target: Option<ObjectId>, opts: SensitivityOptions) -> Self {
        Self { query: Query::Sensitivity { target, opts }, budget: Budget::default(), tenant: None }
    }

    /// A preference-elicitation ranking request.
    pub fn elicitation_rank(opts: ElicitOptions) -> Self {
        Self { query: Query::ElicitationRank { opts }, budget: Budget::default(), tenant: None }
    }

    /// Chainable: attach a budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Chainable: run on behalf of a registered tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }
}

/// The values a query can produce.
///
/// Batch shapes mirror
/// [`ResidentOutcome`](presky_query::engine::ResidentOutcome): one slot
/// per object in object order, `None` where the budget ran out before
/// that object was solved. Every present value is bit-identical to the
/// unbudgeted run of the same options.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Value {
    /// One object's probability (`None` only under a tripped budget).
    Sky(Option<SkyResult>),
    /// Per-object probabilities.
    AllSky(Vec<Option<SkyResult>>),
    /// Per-object membership verdicts.
    Threshold(Vec<Option<ThresholdAnswer>>),
    /// The final ranking, best first (at most `k` entries).
    TopK(Vec<SkyResult>),
    /// Per-object gradients (single-target requests produce one slot).
    Sensitivity(Vec<Option<TargetSensitivity>>),
    /// Preference pairs by descending value of information.
    ElicitationRank(Vec<ElicitationCandidate>),
}

impl Value {
    /// The single-object result, if this is a [`Value::Sky`].
    pub fn as_sky(&self) -> Option<&SkyResult> {
        match self {
            Value::Sky(r) => r.as_ref(),
            _ => None,
        }
    }

    /// The per-object slots, if this is a [`Value::AllSky`].
    pub fn as_all_sky(&self) -> Option<&[Option<SkyResult>]> {
        match self {
            Value::AllSky(v) => Some(v),
            _ => None,
        }
    }

    /// The per-object verdicts, if this is a [`Value::Threshold`].
    pub fn as_threshold(&self) -> Option<&[Option<ThresholdAnswer>]> {
        match self {
            Value::Threshold(v) => Some(v),
            _ => None,
        }
    }

    /// The ranking, if this is a [`Value::TopK`].
    pub fn as_top_k(&self) -> Option<&[SkyResult]> {
        match self {
            Value::TopK(v) => Some(v),
            _ => None,
        }
    }

    /// The per-object gradients, if this is a [`Value::Sensitivity`].
    pub fn as_sensitivity(&self) -> Option<&[Option<TargetSensitivity>]> {
        match self {
            Value::Sensitivity(v) => Some(v),
            _ => None,
        }
    }

    /// The ranked pairs, if this is a [`Value::ElicitationRank`].
    pub fn as_elicitation_rank(&self) -> Option<&[ElicitationCandidate]> {
        match self {
            Value::ElicitationRank(v) => Some(v),
            _ => None,
        }
    }

    /// Whether every present value was produced exactly (no estimate).
    pub(crate) fn all_exact(&self) -> bool {
        match self {
            Value::Sky(r) => r.is_none_or(|r| r.exact),
            Value::AllSky(v) => v.iter().flatten().all(|r| r.exact),
            Value::TopK(v) => v.iter().all(|r| r.exact),
            Value::Threshold(v) => v
                .iter()
                .flatten()
                .all(|a| matches!(a.resolution, Resolution::Bounds(_) | Resolution::Exact(_))),
            // Gradients only exist through the exact pipeline; the VoI
            // ranking is a deterministic fold over those exact gradients.
            Value::Sensitivity(_) | Value::ElicitationRank(_) => true,
        }
    }
}

/// How a request concluded.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Outcome {
    /// Every value is exact (certified bounds count as exact decisions).
    Exact(Value),
    /// At least one value is a Monte-Carlo estimate (or a sequential-test
    /// decision, which carries the test's error probability).
    Estimate(Value),
    /// The budget (deadline or work ledger) tripped before every slot was
    /// solved. The partial value contains everything completed in time —
    /// each present slot is bit-identical to the unbudgeted run; nothing
    /// is fabricated.
    DeadlineExceeded {
        /// What completed within budget.
        partial: Value,
        /// Slots (or top-k refinements) the budget truncated.
        truncated: u64,
    },
}

impl Outcome {
    /// The carried value, whatever the conclusion.
    pub fn value(&self) -> &Value {
        match self {
            Outcome::Exact(v) | Outcome::Estimate(v) => v,
            Outcome::DeadlineExceeded { partial, .. } => partial,
        }
    }

    /// Whether the request finished within budget.
    pub fn complete(&self) -> bool {
        !matches!(self, Outcome::DeadlineExceeded { .. })
    }

    pub(crate) fn classify(value: Value, truncated: u64) -> Self {
        if truncated > 0 {
            Outcome::DeadlineExceeded { partial: value, truncated }
        } else if value.all_exact() {
            Outcome::Exact(value)
        } else {
            Outcome::Estimate(value)
        }
    }
}

/// The answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Response {
    /// The typed conclusion with its value.
    pub outcome: Outcome,
    /// Pipeline counters of this request alone.
    pub stats: PipelineStats,
    /// Wall-clock time from admission to answer.
    pub elapsed: Duration,
    /// The dataset epoch this request was pinned to at admission; every
    /// value in `outcome` was computed against exactly this version of
    /// the table, indexes and preferences.
    pub epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_pins_relative_deadline_at_admission() {
        let now = Instant::now();
        let b = Budget::default()
            .with_deadline(Some(Duration::from_millis(5)))
            .with_max_joints(Some(7));
        assert!(!b.is_unlimited());
        let eb = b.to_engine_budget(now);
        assert_eq!(eb.deadline_at, Some(now + Duration::from_millis(5)));
        assert_eq!(eb.max_joints, Some(7));
        assert_eq!(eb.max_samples, None);
        assert!(Budget::unlimited().to_engine_budget(now).is_unlimited());
    }

    #[test]
    fn covers_is_field_wise_at_least_as_generous() {
        let unlimited = Budget::unlimited();
        let tight = Budget::default()
            .with_deadline(Some(Duration::from_millis(5)))
            .with_max_joints(Some(100));
        let loose = Budget::default()
            .with_deadline(Some(Duration::from_millis(50)))
            .with_max_joints(Some(1000));
        assert!(unlimited.covers(&tight));
        assert!(unlimited.covers(&unlimited));
        assert!(loose.covers(&tight));
        assert!(!tight.covers(&loose));
        assert!(!tight.covers(&unlimited), "a limit never covers unlimited");
        // An orthogonal limit breaks coverage even when the others align.
        let sampled = loose.with_max_samples(Some(10));
        assert!(!sampled.covers(&loose));
        assert!(loose.covers(&sampled.with_max_samples(None)));
    }

    #[test]
    fn outcome_classification() {
        let exact = SkyResult { object: ObjectId(0), sky: 0.5, exact: true };
        let est = SkyResult { object: ObjectId(1), sky: 0.25, exact: false };
        assert!(matches!(
            Outcome::classify(Value::AllSky(vec![Some(exact)]), 0),
            Outcome::Exact(_)
        ));
        assert!(matches!(
            Outcome::classify(Value::AllSky(vec![Some(exact), Some(est)]), 0),
            Outcome::Estimate(_)
        ));
        let o = Outcome::classify(Value::AllSky(vec![Some(exact), None]), 1);
        assert!(!o.complete());
        assert_eq!(o.value().as_all_sky().unwrap().len(), 2);
    }
}
