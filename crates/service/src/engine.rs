//! The resident [`Engine`]: load once, serve many — and now, mutate live.
//!
//! `Engine::new` pays the per-dataset costs exactly once — duplicate
//! validation, dense value codes, posting lists and the `pr_strict` memo
//! of the [`BatchCoinContext`], plus
//! an empty cross-request
//! [`ComponentCache`] — and then serves any number of concurrent
//! [`Request`]s from `&self`. All mutability is interior (atomics, the
//! sharded cache, a poison-recovering stats mutex, the epoch swap), so one
//! engine handle can be shared across threads with a plain `Arc` or
//! scoped borrows.
//!
//! ## Epochs and the write path
//!
//! The dataset lives behind an epoch/MVCC cell: one
//! [`DatasetEpoch`] bundles a consistent version of the table, its batch
//! indexes and the preference model. Readers **pin** the current epoch at
//! admission (one `Arc` clone) and read only it for the whole request, so
//! a concurrent write never alters a value mid-request — the bit-identity
//! contract survives mutation. Writes ([`Engine::insert_object`],
//! [`Engine::remove_object`], [`Engine::set_preference`]) are
//! single-writer/multi-reader: a writer lock serialises commits, each
//! commit derives the next epoch copy-on-write (only touched structures
//! are rebuilt) and installs it with one pointer swap. A superseded epoch
//! *retires* — counted in [`MetricsSnapshot::epochs_retired`] — when its
//! last pinned reader drains.
//!
//! ## Incremental cache invalidation
//!
//! The component cache is content-addressed: keys embed every
//! `(dim, value, prob_bits)` coin triple an entry depends on. Inserting
//! or removing an object changes no triple, so those writes evict
//! **nothing** — every cached component stays reachable and correct.
//! Editing a preference pair changes at most two triples; the cache's
//! reverse index evicts exactly the entries whose signature embeds a
//! touched coin and leaves the rest warm (the `(dim, value)` granularity
//! can over-evict entries carrying other bits of the same coin — sound,
//! at worst a miss). Entries keyed by the *old* bits that escape eviction
//! are stale-unreachable garbage, never wrong answers.
//! [`EngineOptions::incremental_invalidation`]` = false` swaps in the
//! naive baseline (any write drops the whole cache) for A/B measurement.
//!
//! ## Admission control
//!
//! Two deterministic gates shed load *before* any query work runs:
//!
//! 1. **in-flight ceiling** — at most
//!    [`EngineOptions::max_in_flight`] requests run concurrently; the
//!    `max_in_flight + 1`-th arrival gets
//!    [`ServiceError::Overloaded`] immediately;
//! 2. **predicted-cost ceiling** — each request's cost is predicted from
//!    the sampler cost model (the same `Σ 2^|g|`-vs-samples model the
//!    planner budgets with, collapsed to its admission-time upper bound:
//!    every object, `n − 1` attackers, `(n − 1)·d` coins) and compared
//!    against [`EngineOptions::max_predicted_cost`].
//!
//! Both decisions depend only on the request and the pinned epoch's
//! dimensions — never on timing — so shedding is reproducible per epoch.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use presky_core::batch::BatchCoinContext;
use presky_core::epoch::{DatasetEpoch, SnapshotView, WriteEffects};
use presky_core::pool::ThreadBudget;
use presky_core::preference::{DeltaOverlay, PreferenceModel};
use presky_core::table::Table;
use presky_core::types::{DimId, ObjectId, ValueId};

use presky_approx::sampler::SamOptions;
use presky_exact::cache::{ComponentCache, Eviction, DEFAULT_BYTE_CAP};
use presky_exact::snapshot::{self, Fnv, SnapshotFingerprint};
use presky_query::engine::{
    all_sky_range_resident, all_sky_resident, elicitation_rank_resident, sensitivity_one_resident,
    sensitivity_resident, sky_one_resident, threshold_resident, top_k_resident, CacheScope,
    EngineBudget, PipelineStats, ResidentOutcome,
};
use presky_query::prob_skyline::{Algorithm, QueryOptions, SkyResult};

use crate::coalesce::{request_signature, Join, SingleFlight};
use crate::error::{Result, ServiceError};
use crate::metrics::{get, inc, Metrics, MetricsSnapshot};
use crate::request::{Outcome, Query, Request, Response, Value};
use crate::tenant::{self, OverlayHandle, TenantId, TenantRegistry, TenantState};

/// Construction-time configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Maximum concurrently running requests; arrivals beyond this are
    /// shed with [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Per-request predicted-cost ceiling (machine-word operations);
    /// `None` disables the gate.
    pub max_predicted_cost: Option<u64>,
    /// Byte cap of the cross-request component cache.
    pub cache_bytes: usize,
    /// Single-flight coalescing of identical concurrent requests (see
    /// [`crate::coalesce`]): on by default; off makes every submission
    /// execute solo (the A/B baseline for the `serve` bench).
    pub coalescing: bool,
    /// Signature-targeted cache invalidation on preference edits (see the
    /// [module docs](self)): on by default; off drops the whole component
    /// cache on every write (the A/B baseline for mutation benches).
    pub incremental_invalidation: bool,
    /// Per-tenant component-cache key namespacing — the **no-sharing
    /// ablation** the multi-tenant bench measures against. Off (the
    /// default), tenants share one content-addressed key space and every
    /// overlay-untouched component is served across users; on, each
    /// tenanted request suffixes its cache keys with the tenant id, so no
    /// entry is ever shared between tenants. Values are bit-identical
    /// either way (the cache only memoizes, never alters).
    pub tenant_namespacing: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            max_predicted_cost: None,
            cache_bytes: DEFAULT_BYTE_CAP,
            coalescing: true,
            incremental_invalidation: true,
            tenant_namespacing: false,
        }
    }
}

impl EngineOptions {
    /// Chainable: set the in-flight ceiling.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Chainable: set (or clear) the predicted-cost ceiling.
    pub fn with_max_predicted_cost(mut self, max_predicted_cost: Option<u64>) -> Self {
        self.max_predicted_cost = max_predicted_cost;
        self
    }

    /// Chainable: set the component-cache byte cap.
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Chainable: enable or disable single-flight coalescing.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Chainable: enable or disable incremental cache invalidation.
    pub fn with_incremental_invalidation(mut self, incremental: bool) -> Self {
        self.incremental_invalidation = incremental;
        self
    }

    /// Chainable: enable or disable the per-tenant cache-namespacing
    /// ablation.
    pub fn with_tenant_namespacing(mut self, tenant_namespacing: bool) -> Self {
        self.tenant_namespacing = tenant_namespacing;
        self
    }
}

/// What one committed write did, for the caller's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CommitReceipt {
    /// The epoch id this write installed (readers admitted after the
    /// commit pin this id or later).
    pub epoch: u64,
    /// Targets whose coin view the write changed (see
    /// [`WriteEffects::dirtied_targets`]).
    pub dirtied_targets: usize,
    /// Component-cache entries evicted by invalidation.
    pub evicted_components: u64,
    /// Component-cache bytes evicted by invalidation.
    pub evicted_bytes: u64,
}

/// A long-lived query service over one live dataset.
///
/// See the [module docs](self) for the epoch, admission and budget
/// semantics. The preference model `M` is wrapped in an
/// [`OverlayPreferences`](presky_core::preference::OverlayPreferences)
/// internally, which is what makes [`set_preference`](Engine::set_preference)
/// work over any base model.
#[derive(Debug)]
pub struct Engine<M> {
    /// The current epoch; readers pin it with one `Arc` clone under the
    /// read lock, the writer swaps it under the write lock. The lock is
    /// held only for the clone/swap — never across query work.
    current: RwLock<Arc<DatasetEpoch<M>>>,
    /// Serialises commits (single-writer/multi-reader).
    writer: Mutex<()>,
    cache: ComponentCache,
    opts: EngineOptions,
    metrics: Metrics,
    in_flight: AtomicUsize,
    flights: Arc<SingleFlight>,
    /// Superseded epochs whose last pinned reader has drained.
    epochs_retired: Arc<AtomicU64>,
    /// Registered per-user preference overlays; shared (same `Arc`)
    /// across every shard of a sharded deployment.
    tenants: Arc<TenantRegistry>,
}

/// Per-dimension cap on the value universe hashed pairwise into the
/// engine [`fingerprint`](Engine::fingerprint). Categorical domains (the
/// warmstart regime) sit far below it; huge numeric domains hash a
/// deterministic prefix of the grid plus the universe size.
pub const FINGERPRINT_PAIR_CAP: usize = 128;

/// The `(dataset, preferences)` fingerprint pair of one epoch.
///
/// Both hashes are computed from the **raw table** and the preference
/// grid over its occurring values — deliberately not from
/// [`BatchCoinContext::fingerprint`], whose dense code assignment depends
/// on the build *path* (a context derived by incremental removal keeps
/// orphan codes a fresh build never assigns). Hashing the raw cells keeps
/// the fingerprint stable across "mutated here" vs "rebuilt there", which
/// is exactly what snapshot warmstart needs.
fn compute_fingerprints<M: PreferenceModel>(epoch: &DatasetEpoch<M>) -> (u64, u64) {
    let table = epoch.table();
    let prefs = epoch.prefs();
    let d = table.dimensionality();

    let mut h = Fnv::new();
    h.eat(&(d as u64).to_le_bytes());
    h.eat(&(table.len() as u64).to_le_bytes());
    for j in 0..d {
        for v in table.column(DimId(j as u32)) {
            h.eat(&v.0.to_le_bytes());
        }
    }
    let dataset = h.finish();

    let mut h = Fnv::new();
    h.eat(&(d as u64).to_le_bytes());
    for j in 0..d {
        let dim = DimId(j as u32);
        let values: BTreeSet<ValueId> = table.column(dim).iter().copied().collect();
        h.eat(&(values.len() as u64).to_le_bytes());
        let head: Vec<ValueId> = values.into_iter().take(FINGERPRINT_PAIR_CAP).collect();
        for &a in &head {
            for &b in &head {
                if a != b {
                    h.eat(&prefs.pr_strict(dim, a, b).to_bits().to_le_bytes());
                }
            }
        }
    }
    (dataset, h.finish())
}

/// Releases one in-flight slot even if the query worker panics.
struct InFlightSlot<'a>(&'a AtomicUsize);

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<M: PreferenceModel + Sync> Engine<M> {
    /// Index `table` once and stand up an empty component cache.
    pub fn new(table: Table, prefs: M, opts: EngineOptions) -> Result<Self> {
        let epoch =
            DatasetEpoch::build(table, prefs).map_err(presky_query::error::QueryError::from)?;
        Ok(Self::from_epoch(epoch, opts))
    }

    /// Assemble an engine around an already-built epoch — how the sharded
    /// deployment replicates one build across shards without re-validating
    /// the table per shard.
    pub(crate) fn from_epoch(mut epoch: DatasetEpoch<M>, opts: EngineOptions) -> Self {
        let epochs_retired = Arc::new(AtomicU64::new(0));
        epoch.set_retirement_counter(Arc::clone(&epochs_retired));
        Self {
            current: RwLock::new(Arc::new(epoch)),
            writer: Mutex::new(()),
            cache: ComponentCache::with_byte_cap(opts.cache_bytes),
            opts,
            metrics: Metrics::default(),
            in_flight: AtomicUsize::new(0),
            flights: Arc::default(),
            epochs_retired,
            tenants: Arc::default(),
        }
    }

    /// [`Engine::new`], then replace the empty component cache with a
    /// snapshot loaded from `path` (see [`presky_exact::snapshot`]).
    ///
    /// The snapshot must carry this engine's [`fingerprint`]; a snapshot
    /// taken over a different dataset or preference model is refused with
    /// [`ServiceError::Warmstart`] — whose detail names *which* side
    /// mismatched (the dataset or the preference grid) — and the engine is
    /// **not** constructed. A fresh engine warm-started this way serves
    /// its first requests at the steady-state cache hit rate instead of
    /// paying the cold pass.
    ///
    /// [`fingerprint`]: Engine::fingerprint
    pub fn with_warm_cache(
        table: Table,
        prefs: M,
        opts: EngineOptions,
        path: &Path,
    ) -> Result<Self> {
        let mut engine = Self::new(table, prefs, opts)?;
        engine.load_cache_from(path)?;
        Ok(engine)
    }

    /// Serialize the live component cache to `path`, keyed by the current
    /// epoch's [`fingerprint`](Engine::fingerprint). The file is
    /// versioned and checksummed; equal cache contents produce
    /// byte-identical files.
    pub fn save_cache_snapshot(&self, path: &Path) -> Result<()> {
        snapshot::save_to_path(&self.cache, self.fingerprint(), path)?;
        Ok(())
    }

    /// Identity hashes of the dataset, the preference model, and the
    /// tenant registry — the three-field key a cache snapshot is saved
    /// and validated under, so a refused warmstart can say *which* side
    /// drifted.
    ///
    /// The dataset field covers dimensionality, row count and every raw
    /// cell; the preference field covers the `pr_strict` grid over each
    /// dimension's occurring values (capped at [`FINGERPRINT_PAIR_CAP`]
    /// per dimension — a pair edit on values beyond the cap, or absent
    /// from the dataset, may collide, which can only ever cost cache
    /// *misses*, never wrong values: cache keys embed every probability
    /// bit they depend on, so a stale entry simply fails to match).
    /// Computed lazily once per epoch; the tenant field is `0` while no
    /// tenants are registered, so untenanted deployments keep their
    /// snapshot identity, and is re-read on every call (tenant
    /// registration is cheap and epoch-independent).
    pub fn fingerprint(&self) -> SnapshotFingerprint {
        let epoch = self.pin();
        let (dataset, preferences) = epoch.cached_fingerprints(|| compute_fingerprints(&epoch));
        SnapshotFingerprint { dataset, preferences, tenants: self.tenants.fingerprint() }
    }

    /// Pin the current epoch: one `Arc` clone under the read lock.
    pub(crate) fn pin(&self) -> Arc<DatasetEpoch<M>> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// A read-only view pinned to the current epoch. The view keeps its
    /// epoch alive: table, indexes and preferences stay consistent (and
    /// bit-stable) for as long as the caller holds it, however many
    /// writes commit meanwhile.
    pub fn snapshot(&self) -> SnapshotView<M> {
        SnapshotView::pin(&self.pin())
    }

    /// The current epoch id (0 until the first write commits).
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap_or_else(|e| e.into_inner()).id()
    }

    /// The live component cache (sharded driver + tests).
    pub(crate) fn cache(&self) -> &ComponentCache {
        &self.cache
    }

    /// Replace the component cache with a snapshot from `path` (refuses a
    /// fingerprint mismatch). Backs both warm-start constructors.
    pub(crate) fn load_cache_from(&mut self, path: &Path) -> Result<()> {
        self.cache = snapshot::load_from_path(path, self.fingerprint(), self.opts.cache_bytes)?;
        Ok(())
    }

    /// Replace the component cache with a snapshot from `path`.
    ///
    /// Same contract as [`with_warm_cache`](Engine::with_warm_cache), but
    /// callable on a built engine — the ordering a tenant-serving process
    /// needs: construct, [`register_tenant`](Engine::register_tenant) the
    /// same registry the snapshot was saved under, *then* warm-start. A
    /// snapshot whose tenant-registry fingerprint differs from the
    /// engine's is refused with [`ServiceError::Warmstart`] naming the
    /// tenant registry.
    pub fn load_cache_snapshot(&mut self, path: &Path) -> Result<()> {
        self.load_cache_from(path)
    }

    /// Register (or wholesale replace) `tenant`'s preference overlay from
    /// `(dim, a, b, forward, backward)` rows, validated like any other
    /// preference write (probabilities in `[0, 1]`, pair mass ≤ 1, no
    /// self-pairs). Returns a receipt carrying the overlay's content
    /// [fingerprint](OverlayHandle::fingerprint).
    ///
    /// Registration never touches the component cache: overlay-affected
    /// components get *different* cache keys (their probability bits
    /// differ), so base entries stay shared and valid. An empty
    /// `overlay_pairs` registers a tenant whose responses are
    /// contractually **byte-identical** to untenanted requests.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        overlay_pairs: &[(DimId, ValueId, ValueId, f64, f64)],
    ) -> Result<OverlayHandle> {
        let delta = tenant::delta_from_pairs(overlay_pairs)
            .map_err(presky_query::error::QueryError::from)?;
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        Ok(self.tenants.install(tenant, delta))
    }

    /// Copy-on-write update of one pair in `tenant`'s overlay: builds a
    /// new validated delta and atomically swaps it in. Requests already
    /// in flight keep the state they resolved at admission (the same MVCC
    /// discipline dataset writes use); requests admitted after the swap
    /// see the new overlay. Serialised under the engine's writer lock,
    /// like dataset writes. Unknown tenants are refused.
    pub fn set_tenant_preference(
        &self,
        tenant: TenantId,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<OverlayHandle> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let Some(state) = self.tenants.resolve(tenant.0) else {
            return Err(ServiceError::UnknownTenant { tenant: tenant.0 });
        };
        let delta = state
            .delta
            .clone()
            .with_pair(dim, a, b, forward, backward)
            .map_err(presky_query::error::QueryError::from)?;
        Ok(self.tenants.install(tenant, delta))
    }

    /// Registered tenants.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The shared tenant registry (sharded driver replication).
    pub(crate) fn tenants_arc(&self) -> Arc<TenantRegistry> {
        Arc::clone(&self.tenants)
    }

    /// Adopt `registry` as this engine's tenant table. The sharded driver
    /// calls this at construction so every shard resolves tenants from
    /// one shared registry — a registration through any handle is visible
    /// fleet-wide, and fan-out legs of one request resolve identical
    /// state on every shard.
    pub(crate) fn share_tenants(&mut self, registry: Arc<TenantRegistry>) {
        self.tenants = registry;
    }

    /// The internal counter block (sharded driver's request attribution).
    pub(crate) fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// Objects in the current epoch.
    pub fn n_objects(&self) -> usize {
        self.current.read().unwrap_or_else(|e| e.into_inner()).n_objects()
    }

    /// Commit a new object with `values`; readers admitted before the
    /// commit keep answering from their pinned epoch.
    ///
    /// No coin signature changes, so **nothing is evicted** from the
    /// component cache — every entry remains reachable and correct under
    /// the new epoch; the receipt reports how many existing targets the
    /// new object can attack (their next computation sees a changed coin
    /// view and caches fresh components alongside the old ones).
    pub fn insert_object(&self, values: &[ValueId]) -> Result<CommitReceipt> {
        self.commit(|epoch| epoch.insert_object(values))
    }

    /// Commit the removal of object `obj` (later ids shift down by one).
    /// Like inserts, removals evict nothing: component signatures are
    /// content-addressed, not id-addressed.
    pub fn remove_object(&self, obj: ObjectId) -> Result<CommitReceipt> {
        self.commit(|epoch| epoch.remove_object(obj))
    }

    /// Commit `Pr(a ≺ b) = forward`, `Pr(b ≺ a) = backward` on `dim`.
    ///
    /// The only write that strands cache entries: per direction whose
    /// probability bits actually changed, entries whose signature embeds
    /// the touched `(dim, value)` coin are evicted via the cache's
    /// reverse index (or the whole cache is dropped when
    /// [`EngineOptions::incremental_invalidation`] is off). The receipt
    /// carries the exact eviction counts.
    pub fn set_preference(
        &self,
        dim: DimId,
        a: ValueId,
        b: ValueId,
        forward: f64,
        backward: f64,
    ) -> Result<CommitReceipt>
    where
        M: Clone,
    {
        self.commit(|epoch| epoch.set_preference(dim, a, b, forward, backward))
    }

    /// Single-writer commit protocol: serialise, derive the next epoch
    /// from the current one, install. A failed write installs nothing and
    /// leaves the current epoch untouched.
    fn commit(
        &self,
        write: impl FnOnce(
            &DatasetEpoch<M>,
        ) -> presky_core::error::Result<(DatasetEpoch<M>, WriteEffects)>,
    ) -> Result<CommitReceipt> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.pin();
        let (next, effects) = write(&current).map_err(presky_query::error::QueryError::from)?;
        Ok(self.install(next, &effects))
    }

    /// Install `next` as the current epoch: invalidate the cache for the
    /// write's touched coins, swap the epoch pointer, mark the old epoch
    /// superseded (it retires when its last pinned reader drains).
    ///
    /// Callers must hold a writer lock (this engine's via
    /// [`commit`](Self::commit), or the sharded driver's fleet-wide one).
    /// Invalidation runs *before* the swap so no reader of the new epoch
    /// can observe a stale-reachable entry; entries a concurrent
    /// old-epoch reader re-inserts afterwards carry old probability bits
    /// and are unreachable from new-epoch signatures.
    pub(crate) fn install(
        &self,
        mut next: DatasetEpoch<M>,
        effects: &WriteEffects,
    ) -> CommitReceipt {
        next.set_retirement_counter(Arc::clone(&self.epochs_retired));
        let evicted = self.invalidate(effects);
        let next = Arc::new(next);
        let epoch = next.id();
        let old = {
            let mut current = self.current.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *current, next)
        };
        old.mark_superseded();
        drop(old);
        inc(&self.metrics.writes);
        self.metrics.evicted_components.fetch_add(evicted.entries, Ordering::Relaxed);
        self.metrics.evicted_bytes.fetch_add(evicted.bytes, Ordering::Relaxed);
        CommitReceipt {
            epoch,
            dirtied_targets: effects.dirtied_targets,
            evicted_components: evicted.entries,
            evicted_bytes: evicted.bytes,
        }
    }

    /// Evict what one write stranded (see the [module docs](self)).
    fn invalidate(&self, effects: &WriteEffects) -> Eviction {
        if !self.opts.incremental_invalidation {
            // Naive baseline: any write drops the whole cache.
            let dropped = Eviction { entries: self.cache.len() as u64, bytes: self.cache.bytes() };
            self.cache.clear();
            return dropped;
        }
        if effects.touched_coins.is_empty() {
            return Eviction::default();
        }
        // Both directions of one edited pair share a dimension, but group
        // defensively so a future multi-pair effects batch stays correct.
        let mut by_dim: Vec<(u32, Vec<(u32, u64)>)> = Vec::new();
        for coin in &effects.touched_coins {
            match by_dim.iter_mut().find(|(d, _)| *d == coin.dim.0) {
                Some((_, v)) => v.push((coin.value.0, coin.old_bits)),
                None => by_dim.push((coin.dim.0, vec![(coin.value.0, coin.old_bits)])),
            }
        }
        let mut total = Eviction::default();
        for (dim, touched) in by_dim {
            let ev = self.cache.evict_signature_touched(dim, &touched);
            total.entries += ev.entries;
            total.bytes += ev.bytes;
        }
        total
    }

    /// Serve one request from this thread.
    ///
    /// The request pins the current epoch at admission and answers
    /// entirely from it; [`Response::epoch`] records which. With
    /// coalescing enabled (the default), identical concurrent submissions
    /// *that pinned the same epoch* share one execution: the first
    /// becomes the leader and runs the solo path; the rest block and
    /// receive the leader's [`Response`] (own `elapsed`, leader's value
    /// and stats), provided the leader's [`Budget`] covers theirs — see
    /// [`crate::coalesce`] for the exact rule. A submission arriving
    /// after a write commits pins a newer epoch and opens its own flight.
    /// A failed leader sends its followers to solo execution; every
    /// submission is counted exactly once in the metrics. Any number of
    /// threads may call this concurrently on one engine.
    ///
    /// [`Budget`]: crate::request::Budget
    pub fn run(&self, request: Request) -> Result<Response> {
        inc(&self.metrics.requests);
        let overlay = self.resolve_overlay(&request)?;
        let epoch = self.pin();
        if !self.opts.coalescing {
            return self.run_solo(&request, &epoch, overlay.as_deref());
        }
        let overlay_fp = overlay.as_ref().map_or(0, |state| state.fingerprint);
        let Some(key) = request_signature(&request, epoch.id(), overlay_fp) else {
            return self.run_solo(&request, &epoch, overlay.as_deref());
        };
        match self.flights.join(key, request.budget) {
            Join::Leader(guard) => {
                let outcome = self.run_solo(&request, &epoch, overlay.as_deref());
                let followers = guard.publish(outcome.as_ref().ok().cloned());
                if followers > 0 {
                    inc(&self.metrics.coalesce_led);
                }
                outcome
            }
            Join::Follower(flight) => {
                let started = Instant::now();
                match flight.wait() {
                    Some(response) => {
                        inc(&self.metrics.coalesced);
                        if let Some(t) = request.tenant {
                            self.metrics.tenant_add(t.0, |m| m.coalesced += 1);
                        }
                        Ok(Response { elapsed: started.elapsed(), ..response })
                    }
                    // The leader failed without publishing; this
                    // submission still owes its caller an answer (and was
                    // already counted in `requests`), so run it solo on
                    // the epoch it pinned (the flight key guarantees the
                    // leader pinned the same one).
                    None => self.run_solo(&request, &epoch, overlay.as_deref()),
                }
            }
            Join::Bypass => self.run_solo(&request, &epoch, overlay.as_deref()),
        }
    }

    /// Resolve the request's tenant (if any) to its pinned overlay state.
    /// An unregistered tenant is a terminal failure, counted like any
    /// other non-shed error; registered tenants get their per-tenant
    /// request counted here, at admission into the tenant path.
    fn resolve_overlay(&self, request: &Request) -> Result<Option<Arc<TenantState>>> {
        let Some(t) = request.tenant else { return Ok(None) };
        match self.tenants.resolve(t.0) {
            Some(state) => {
                self.metrics.tenant_add(t.0, |m| m.requests += 1);
                Ok(Some(state))
            }
            None => {
                inc(&self.metrics.failed);
                Err(ServiceError::UnknownTenant { tenant: t.0 })
            }
        }
    }

    /// Execute one request outside the single-flight layer: admission
    /// gates, budget pinning, the resident pipeline, outcome
    /// classification. Exactly one terminal counter (`completed`, a shed
    /// counter, or `failed`) is incremented per call.
    fn run_solo(
        &self,
        request: &Request,
        epoch: &Arc<DatasetEpoch<M>>,
        overlay: Option<&TenantState>,
    ) -> Result<Response> {
        let result = self.run_admitted(request, epoch, overlay);
        if let Err(e) = &result {
            if !e.is_shed() {
                inc(&self.metrics.failed);
            }
        }
        result
    }

    fn run_admitted(
        &self,
        request: &Request,
        epoch: &Arc<DatasetEpoch<M>>,
        overlay: Option<&TenantState>,
    ) -> Result<Response> {
        if let Some(max) = self.opts.max_predicted_cost {
            let predicted = self.predicted_cost_on(epoch, &request.query);
            if predicted > max {
                inc(&self.metrics.shed_cost);
                return Err(ServiceError::CostCeiling { predicted, max });
            }
        }
        let previous = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let slot = InFlightSlot(&self.in_flight);
        if previous >= self.opts.max_in_flight {
            inc(&self.metrics.shed_overload);
            return Err(ServiceError::Overloaded {
                in_flight: previous,
                max: self.opts.max_in_flight,
            });
        }
        inc(&self.metrics.admitted);

        let admitted_at = Instant::now();
        let budget = request.budget.to_engine_budget(admitted_at);
        let scope = self.scope_for(overlay, request.tenant);
        let ctx = epoch.ctx().as_ref();
        // The two arms below monomorphize `dispatch` separately; an empty
        // (or absent) overlay takes the *same* instantiation untenanted
        // requests take, which is what makes the empty-overlay
        // bit-identity contract structural rather than numerical.
        let (value, stats, truncated) = match overlay {
            Some(state) if !state.delta.is_empty() => {
                let prefs = DeltaOverlay::new(&state.delta, epoch.prefs().as_ref());
                dispatch(&request.query, ctx, &prefs, Some(scope), budget)?
            }
            _ => dispatch(&request.query, ctx, epoch.prefs().as_ref(), Some(scope), budget)?,
        };
        drop(slot);

        self.metrics.merge_stats(&stats);
        self.count_tenant_stats(request.tenant, &stats);
        inc(&self.metrics.completed);
        let outcome = Outcome::classify(value, truncated);
        if !outcome.complete() {
            inc(&self.metrics.deadline_misses);
        }
        Ok(Response { outcome, stats, elapsed: admitted_at.elapsed(), epoch: epoch.id() })
    }

    /// The cache scope a request executes under: the shared cache, plus —
    /// for tenanted requests — the overlay's touched-coin mask (telemetry
    /// classification of hits into cross-user vs overlay-specific) and,
    /// under the [`EngineOptions::tenant_namespacing`] ablation, a
    /// per-tenant key namespace that forbids all cross-user sharing.
    fn scope_for<'a>(
        &'a self,
        overlay: Option<&'a TenantState>,
        tenant: Option<TenantId>,
    ) -> CacheScope<'a> {
        let mut scope = CacheScope::new(&self.cache);
        if overlay.is_some() {
            scope = scope.with_mask(overlay.map(|state| &state.mask));
            if self.opts.tenant_namespacing {
                scope = scope.with_namespace(tenant.map_or(0, |t| t.0.wrapping_add(1)));
            }
        }
        scope
    }

    /// Fold one tenanted execution's cache traffic into the per-tenant
    /// counters and the engine-wide cross-user hit counter.
    fn count_tenant_stats(&self, tenant: Option<TenantId>, stats: &PipelineStats) {
        let Some(t) = tenant else { return };
        self.metrics.tenant_add(t.0, |m| {
            m.cache_probes += stats.cache_probes;
            m.cache_hits += stats.cache_hits;
        });
        self.metrics.cross_user_hits.fetch_add(stats.cache_base_hits, Ordering::Relaxed);
    }

    /// Predicted cost of a request against the current epoch, in the
    /// sampler cost model's machine-word operations.
    ///
    /// This is the admission-time collapse of the planner's model: the
    /// per-object `Σ 2^|g|`-vs-sampling comparison needs the prepared
    /// component structure, which does not exist yet, so every object is
    /// charged its sampling upper bound (`n − 1` attackers over
    /// `(n − 1)·d` coins). Deterministic in the request and the epoch.
    pub fn predicted_cost(&self, query: &Query) -> u64 {
        self.predicted_cost_on(&self.pin(), query)
    }

    fn predicted_cost_on(&self, epoch: &DatasetEpoch<M>, query: &Query) -> u64 {
        let n = epoch.n_objects();
        let d = epoch.table().dimensionality();
        let attackers = n.saturating_sub(1);
        let coins = attackers.saturating_mul(d);
        let per_object = |sam: SamOptions| sam.predicted_cost(attackers, coins).max(1);
        let policy_sam = |algo: &Algorithm| match algo {
            Algorithm::Adaptive { sam, .. } | Algorithm::Sampling(sam) => *sam,
            Algorithm::Exact { .. } => SamOptions::default(),
        };
        match query {
            Query::SkyOne { opts, .. } => per_object(policy_sam(&opts.algorithm)),
            Query::AllSky { opts } => {
                (n as u64).saturating_mul(per_object(policy_sam(&opts.algorithm)))
            }
            Query::Threshold { opts, .. } => (n as u64).saturating_mul(per_object(opts.fallback)),
            Query::TopK { k, opts } => {
                let scout = (n as u64).saturating_mul(per_object(opts.scout));
                let refine = (k.saturating_mul(opts.overfetch).min(n) as u64)
                    .saturating_mul(per_object(opts.refine));
                scout.saturating_add(refine)
            }
            // Gradient passes are exact-only, so the planner's sampling
            // comparison never applies; charge the same per-object upper
            // bound the exact policy is charged elsewhere.
            Query::Sensitivity { target: Some(_), .. } => per_object(SamOptions::default()),
            Query::Sensitivity { target: None, .. } | Query::ElicitationRank { .. } => {
                (n as u64).saturating_mul(per_object(SamOptions::default()))
            }
        }
    }

    /// One shard's slice of a fanned-out all-sky request (global indices
    /// in `range`, `workers` threads, spare capacity via the shared
    /// `pool`). Admission here is the in-flight ceiling only: the owning
    /// sharded driver applies the cost gate once for the whole request
    /// rather than once per shard. `budget` is already absolute, so every
    /// shard of one request shares one wall-clock cut-off. The driver's
    /// epoch gate guarantees no write lands mid-fan-out, so pinning the
    /// current epoch here is consistent across shards.
    pub(crate) fn run_all_sky_range(
        &self,
        tenant: Option<TenantId>,
        range: std::ops::Range<usize>,
        workers: usize,
        opts: QueryOptions,
        budget: EngineBudget,
        pool: &Arc<ThreadBudget>,
    ) -> Result<ResidentOutcome<SkyResult>> {
        inc(&self.metrics.requests);
        let overlay = match tenant {
            Some(t) => match self.tenants.resolve(t.0) {
                Some(state) => {
                    self.metrics.tenant_add(t.0, |m| m.requests += 1);
                    Some(state)
                }
                None => {
                    inc(&self.metrics.failed);
                    return Err(ServiceError::UnknownTenant { tenant: t.0 });
                }
            },
            None => None,
        };
        let epoch = self.pin();
        let previous = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let slot = InFlightSlot(&self.in_flight);
        if previous >= self.opts.max_in_flight {
            inc(&self.metrics.shed_overload);
            return Err(ServiceError::Overloaded {
                in_flight: previous,
                max: self.opts.max_in_flight,
            });
        }
        inc(&self.metrics.admitted);
        let scope = self.scope_for(overlay.as_deref(), tenant);
        let out = match overlay.as_deref() {
            Some(state) if !state.delta.is_empty() => all_sky_range_resident(
                epoch.ctx().as_ref(),
                &DeltaOverlay::new(&state.delta, epoch.prefs().as_ref()),
                range.clone(),
                workers,
                opts,
                Some(scope),
                budget,
                pool,
            ),
            _ => all_sky_range_resident(
                epoch.ctx().as_ref(),
                epoch.prefs().as_ref(),
                range,
                workers,
                opts,
                Some(scope),
                budget,
                pool,
            ),
        }
        .map_err(|e| {
            inc(&self.metrics.failed);
            ServiceError::from(e)
        })?;
        drop(slot);
        self.metrics.merge_stats(&out.stats);
        self.count_tenant_stats(tenant, &out.stats);
        inc(&self.metrics.completed);
        if out.truncated > 0 {
            inc(&self.metrics.deadline_misses);
        }
        Ok(out)
    }

    /// A point-in-time view of the engine's counters and cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: get(&self.metrics.requests),
            admitted: get(&self.metrics.admitted),
            completed: get(&self.metrics.completed),
            coalesced: get(&self.metrics.coalesced),
            coalesce_led: get(&self.metrics.coalesce_led),
            deadline_misses: get(&self.metrics.deadline_misses),
            shed_overload: get(&self.metrics.shed_overload),
            shed_cost: get(&self.metrics.shed_cost),
            failed: get(&self.metrics.failed),
            epoch: self.epoch(),
            writes: get(&self.metrics.writes),
            epochs_retired: self.epochs_retired.load(Ordering::Relaxed),
            evicted_components: get(&self.metrics.evicted_components),
            evicted_bytes: get(&self.metrics.evicted_bytes),
            in_flight: self.in_flight.load(Ordering::Acquire),
            stats: self.metrics.stats_snapshot(),
            cache_entries: self.cache.len(),
            cache_bytes: self.cache.bytes(),
            cross_user_hits: get(&self.metrics.cross_user_hits),
            tenants: self.metrics.tenants_snapshot(),
        }
    }
}

/// Run one query shape through the resident drivers.
///
/// Generic over the resolved preference model so untenanted and
/// empty-overlay requests share one monomorphized instantiation (the
/// bit-identity contract) while overlaid requests reuse the identical
/// code at a [`DeltaOverlay`] instantiation.
fn dispatch<P: PreferenceModel + Sync>(
    query: &Query,
    ctx: &BatchCoinContext,
    prefs: &P,
    cache: Option<CacheScope<'_>>,
    budget: EngineBudget,
) -> Result<(Value, PipelineStats, u64)> {
    Ok(match query {
        Query::SkyOne { target, opts } => {
            let out = sky_one_resident(ctx, prefs, *target, *opts, cache, budget)?;
            (Value::Sky(out.results.into_iter().next().flatten()), out.stats, out.truncated)
        }
        Query::AllSky { opts } => {
            let out = all_sky_resident(ctx, prefs, *opts, cache, budget)?;
            (Value::AllSky(out.results), out.stats, out.truncated)
        }
        Query::Threshold { tau, opts } => {
            let out = threshold_resident(ctx, prefs, *tau, *opts, cache, budget)?;
            (Value::Threshold(out.results), out.stats, out.truncated)
        }
        Query::TopK { k, opts } => {
            let out = top_k_resident(ctx, prefs, *k, *opts, cache, budget)?;
            (Value::TopK(out.results.into_iter().flatten().collect()), out.stats, out.truncated)
        }
        Query::Sensitivity { target: Some(target), opts } => {
            let out = sensitivity_one_resident(ctx, prefs, *target, *opts, cache, budget)?;
            (Value::Sensitivity(out.results), out.stats, out.truncated)
        }
        Query::Sensitivity { target: None, opts } => {
            let out = sensitivity_resident(ctx, prefs, *opts, cache, budget)?;
            (Value::Sensitivity(out.results), out.stats, out.truncated)
        }
        Query::ElicitationRank { opts } => {
            let out = elicitation_rank_resident(ctx, prefs, *opts, cache, budget)?;
            (Value::ElicitationRank(out.candidates), out.stats, out.truncated)
        }
    })
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::types::ObjectId;
    use presky_query::engine::{ElicitOptions, SensitivityOptions};
    use presky_query::prob_skyline::QueryOptions;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;
    use crate::request::Budget;

    fn engine(opts: EngineOptions) -> Engine<TablePreferences> {
        let table =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        Engine::new(table, TablePreferences::with_default(PrefPair::half()), opts).unwrap()
    }

    fn all_sky_bits<M: PreferenceModel + Sync>(e: &Engine<M>) -> Vec<u64> {
        e.run(Request::all_sky(QueryOptions::default()))
            .unwrap()
            .outcome
            .value()
            .as_all_sky()
            .unwrap()
            .iter()
            .map(|r| r.unwrap().sky.to_bits())
            .collect()
    }

    #[test]
    fn serves_every_request_shape() {
        let e = engine(EngineOptions::default());
        let r = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap();
        assert!((r.outcome.value().as_sky().unwrap().sky - 3.0 / 16.0).abs() < 1e-12);
        assert_eq!(r.epoch, 0);
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
        let r = e.run(Request::threshold(0.15, ThresholdOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_threshold().unwrap().len(), 5);
        let r = e.run(Request::top_k(2, TopKOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_top_k().unwrap().len(), 2);
        let r = e.run(Request::sensitivity(None, SensitivityOptions::default())).unwrap();
        assert!(matches!(r.outcome, Outcome::Exact(_)), "gradients are exact-only");
        assert_eq!(r.outcome.value().as_sensitivity().unwrap().len(), 5);
        let r =
            e.run(Request::sensitivity(Some(ObjectId(0)), SensitivityOptions::default())).unwrap();
        let slots = r.outcome.value().as_sensitivity().unwrap();
        assert_eq!(slots.len(), 1);
        assert!(!slots[0].as_ref().unwrap().sensitivities.is_empty());
        let r = e.run(Request::elicitation_rank(ElicitOptions::default())).unwrap();
        assert!(matches!(r.outcome, Outcome::Exact(_)));
        assert!(!r.outcome.value().as_elicitation_rank().unwrap().is_empty());
        let m = e.metrics();
        assert_eq!(m.admitted, 7);
        assert_eq!(m.completed, 7);
        assert_eq!(m.in_flight, 0);
        assert_eq!(m.epoch, 0);
        assert_eq!(m.writes, 0);
    }

    #[test]
    fn sensitivity_gradients_predict_all_sky_exactly_under_a_commit() {
        // Multilinearity end-to-end through the service: for the top
        // elicitation candidate, sky(p → 1) = sky + (1 − p)·Σ dsky per
        // target, and committing the pair must land every object exactly
        // there (within fp roundoff of the re-solved pipeline).
        let e = engine(EngineOptions::default());
        let ranked = e.run(Request::elicitation_rank(ElicitOptions::default())).unwrap();
        let top = ranked.outcome.value().as_elicitation_rank().unwrap()[0];
        let grads = e.run(Request::sensitivity(None, SensitivityOptions::default())).unwrap();
        let predicted: Vec<f64> = grads
            .outcome
            .value()
            .as_sensitivity()
            .unwrap()
            .iter()
            .map(|slot| {
                let t = slot.as_ref().unwrap();
                let delta: f64 = t
                    .sensitivities
                    .iter()
                    .filter(|s| {
                        s.dim == top.dim && (s.a.min(s.b), s.a.max(s.b)) == (top.lo, top.hi)
                    })
                    .map(|s| {
                        // Forward-direction coins move to 1, backward to 0.
                        let to = if s.a == top.lo { 1.0 } else { 0.0 };
                        (to - s.prob) * s.dsky
                    })
                    .sum();
                t.sky + delta
            })
            .collect();
        e.set_preference(top.dim, top.lo, top.hi, 1.0, 0.0).unwrap();
        let after = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        for (slot, want) in after.outcome.value().as_all_sky().unwrap().iter().zip(&predicted) {
            assert!((slot.unwrap().sky - want).abs() < 1e-12, "{} vs {want}", slot.unwrap().sky);
        }
    }

    #[test]
    fn elicitation_commits_drive_total_voi_monotonically_down() {
        // Committing the top-ranked pair each round must never increase
        // the total value of information: resolved coins contribute
        // nothing, and all other coins' probabilities are untouched.
        let e = engine(EngineOptions::default());
        let mut last = f64::INFINITY;
        for round in 0..4 {
            let r = e.run(Request::elicitation_rank(ElicitOptions::default())).unwrap();
            let ranked = r.outcome.value().as_elicitation_rank().unwrap().to_vec();
            let total: f64 = ranked.iter().map(|c| c.voi).sum();
            assert!(total <= last + 1e-12, "round {round}: total VoI rose from {last} to {total}");
            last = total;
            let Some(top) = ranked.first().copied() else { break };
            let receipt = e.set_preference(top.dim, top.lo, top.hi, 1.0, 0.0).unwrap();
            assert_eq!(receipt.epoch, round + 1);
            // The committed pair is certain now: it must leave the ranking.
            let again = e.run(Request::elicitation_rank(ElicitOptions::default())).unwrap();
            assert!(
                again.outcome.value().as_elicitation_rank().unwrap().iter().all(|c| (
                    c.dim, c.lo, c.hi
                ) != (
                    top.dim, top.lo, top.hi
                )),
                "committed pair survived the re-rank"
            );
        }
        assert!(last < f64::INFINITY, "fixture must expose uncertain pairs");
    }

    #[test]
    fn writes_install_fresh_epochs_and_readers_track_them() {
        let e = engine(EngineOptions::default());
        assert_eq!(e.epoch(), 0);
        let before = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(before.epoch, 0);

        let receipt = e.insert_object(&[ValueId(3), ValueId(0)]).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.evicted_components, 0, "inserts never evict");
        assert_eq!(e.n_objects(), 6);

        let after = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.outcome.value().as_all_sky().unwrap().len(), 6);

        let receipt = e.remove_object(ObjectId(5)).unwrap();
        assert_eq!(receipt.epoch, 2);
        assert_eq!(e.n_objects(), 5);

        let m = e.metrics();
        assert_eq!(m.epoch, 2);
        assert_eq!(m.writes, 2);
        // Both superseded epochs had no lingering pins.
        assert_eq!(m.epochs_retired, 2);
        // Back to the original dataset: answers are bit-identical to the
        // pre-write run.
        let roundtrip = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let a = before.outcome.value().as_all_sky().unwrap();
        let b = roundtrip.outcome.value().as_all_sky().unwrap();
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.unwrap().sky.to_bits(), y.unwrap().sky.to_bits());
        }
    }

    #[test]
    fn a_pinned_snapshot_is_immune_to_later_writes() {
        let e = engine(EngineOptions::default());
        let view = e.snapshot();
        assert_eq!(view.id(), 0);
        e.insert_object(&[ValueId(3), ValueId(0)]).unwrap();
        e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        // The view still reads epoch 0: five objects, the original grid.
        assert_eq!(view.n_objects(), 5);
        assert_eq!(view.prefs().pr_strict(DimId(0), ValueId(0), ValueId(1)), 0.5);
        assert_eq!(e.n_objects(), 6);
        // Epoch 0 cannot retire while the view pins it.
        assert_eq!(e.metrics().epochs_retired, 1, "only the insert's epoch 1 retired");
        drop(view);
        assert_eq!(e.metrics().epochs_retired, 2);
    }

    #[test]
    fn preference_edits_evict_only_signature_touched_components() {
        let e = engine(EngineOptions::default());
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let entries_before = e.metrics().cache_entries;
        assert!(entries_before > 0, "fixture must populate the cache");

        // Edit one pair on dim 0; only components embedding the touched
        // coins may go, and the rest of the cache stays warm.
        let receipt = e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert!(receipt.evicted_components > 0, "the edited coins were cached");
        assert!(
            (receipt.evicted_components as usize) < entries_before,
            "incremental invalidation must not drop the whole cache \
             ({} evicted of {entries_before})",
            receipt.evicted_components,
        );
        assert!(receipt.evicted_bytes > 0);
        let m = e.metrics();
        assert_eq!(m.evicted_components, receipt.evicted_components);
        assert_eq!(m.cache_entries, entries_before - receipt.evicted_components as usize);

        // Post-edit answers match a fresh engine over the same epoch's
        // table and (edited) preferences.
        let got = all_sky_bits(&e);
        let view = e.snapshot();
        let fresh = Engine::new(
            view.table().as_ref().clone(),
            view.prefs().as_ref().clone(),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(got, all_sky_bits(&fresh), "edited engine must answer like a fresh build");
    }

    #[test]
    fn full_drop_baseline_clears_the_cache_on_every_write() {
        let e = engine(EngineOptions::default().with_incremental_invalidation(false));
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let entries_before = e.metrics().cache_entries;
        assert!(entries_before > 0);
        let receipt = e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        assert_eq!(receipt.evicted_components as usize, entries_before);
        assert_eq!(e.metrics().cache_entries, 0);
        // Even a signature-preserving insert drops everything in this mode.
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let receipt = e.insert_object(&[ValueId(7), ValueId(7)]).unwrap();
        assert!(receipt.evicted_components > 0);
        assert_eq!(e.metrics().cache_entries, 0);
    }

    #[test]
    fn failed_writes_install_nothing() {
        let e = engine(EngineOptions::default());
        // Duplicate row, bad dimensionality, out-of-range removal, and an
        // invalid probability pair: all refused, none bump the epoch.
        assert!(e.insert_object(&[ValueId(1), ValueId(1)]).is_err());
        assert!(e.insert_object(&[ValueId(9)]).is_err());
        assert!(e.remove_object(ObjectId(40)).is_err());
        assert!(e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.8, 0.8).is_err());
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.metrics().writes, 0);
    }

    #[test]
    fn cost_ceiling_sheds_deterministically() {
        let e = engine(EngineOptions::default().with_max_predicted_cost(Some(1)));
        let err = e.run(Request::all_sky(QueryOptions::default())).unwrap_err();
        assert!(matches!(err, ServiceError::CostCeiling { .. }));
        assert!(err.is_shed());
        assert_eq!(e.metrics().shed_cost, 1);
        assert_eq!(e.metrics().admitted, 0);
    }

    #[test]
    fn zero_in_flight_sheds_everything_and_slots_are_released() {
        let e = engine(EngineOptions::default().with_max_in_flight(0));
        for _ in 0..3 {
            let err = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap_err();
            assert!(matches!(err, ServiceError::Overloaded { .. }));
        }
        let m = e.metrics();
        assert_eq!(m.shed_overload, 3);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn query_errors_propagate_and_engine_survives() {
        let e = engine(EngineOptions::default());
        assert!(matches!(
            e.run(Request::threshold(1.5, ThresholdOptions::default())),
            Err(ServiceError::Query(_))
        ));
        assert!(matches!(
            e.run(Request::top_k(0, TopKOptions::default())),
            Err(ServiceError::Query(_))
        ));
        // The engine keeps serving; the failed requests released their slots.
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(r.outcome.complete());
        assert_eq!(e.metrics().in_flight, 0);
    }

    #[test]
    fn tiny_deadline_concludes_deadline_exceeded_never_wrong() {
        let e = engine(EngineOptions::default());
        let full = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let budget = Budget::default().with_deadline(Some(std::time::Duration::ZERO));
        let r = e.run(Request::all_sky(QueryOptions::default()).with_budget(budget)).unwrap();
        match &r.outcome {
            Outcome::DeadlineExceeded { partial, truncated } => {
                assert!(*truncated > 0);
                let got = partial.as_all_sky().unwrap();
                let want = full.outcome.value().as_all_sky().unwrap();
                for (g, w) in got.iter().zip(want) {
                    if let Some(g) = g {
                        assert_eq!(g.sky.to_bits(), w.unwrap().sky.to_bits());
                    }
                }
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.metrics().deadline_misses, 1);
    }

    #[test]
    fn cache_stays_warm_across_requests() {
        let e = engine(EngineOptions::default());
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let cold = e.metrics();
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let warm = e.metrics();
        assert!(warm.stats.cache_hits > cold.stats.cache_hits);
        assert!(warm.cache_hit_rate() > 0.0);
        assert!(warm.cache_entries > 0);
    }

    #[test]
    fn warm_cache_round_trips_and_refuses_mismatched_fingerprints() {
        let dir = std::env::temp_dir().join(format!("presky-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");

        let cold = engine(EngineOptions::default());
        let cold_resp = cold.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(cold.metrics().cache_entries > 0, "fixture must populate the cache");
        cold.save_cache_snapshot(&path).unwrap();

        let table = cold.snapshot().table().as_ref().clone();
        let warm = Engine::with_warm_cache(
            table.clone(),
            TablePreferences::with_default(PrefPair::half()),
            EngineOptions::default(),
            &path,
        )
        .unwrap();
        assert_eq!(warm.metrics().cache_entries, cold.metrics().cache_entries);
        assert_eq!(warm.fingerprint(), cold.fingerprint());
        // First pass on the warm engine: every probe hits, values are
        // bit-identical to the cold engine's answer.
        let warm_resp = warm.run(Request::all_sky(QueryOptions::default())).unwrap();
        let m = warm.metrics();
        assert_eq!(m.stats.cache_hits, m.stats.cache_probes);
        let a = cold_resp.outcome.value().as_all_sky().unwrap();
        let b = warm_resp.outcome.value().as_all_sky().unwrap();
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.unwrap().sky.to_bits(), y.unwrap().sky.to_bits());
        }
        // Logical work accounting replays identically (hits re-add the
        // cached joints).
        assert_eq!(
            cold_resp.stats.joints_computed, warm_resp.stats.joints_computed,
            "joints_computed must be deterministic across cold/warm caches"
        );

        // A different preference model is a different fingerprint, and
        // the refusal names the preference side.
        let other = Engine::with_warm_cache(
            table,
            TablePreferences::with_default(PrefPair::new(0.25, 0.25).unwrap()),
            EngineOptions::default(),
            &path,
        );
        match other {
            Err(ServiceError::Warmstart { detail }) => {
                assert!(detail.contains("preference grid"), "detail: {detail}");
            }
            other => panic!("expected Warmstart refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutated_and_rebuilt_engines_share_a_fingerprint() {
        // A snapshot saved by a long-lived mutated engine must warm-start
        // a process that rebuilt the same dataset from scratch: the
        // fingerprint hashes raw table contents, not the (build-path
        // dependent) incremental index state.
        let e = engine(EngineOptions::default());
        e.insert_object(&[ValueId(3), ValueId(2)]).unwrap();
        e.remove_object(ObjectId(1)).unwrap();
        let rebuilt = Engine::new(
            e.snapshot().table().as_ref().clone(),
            TablePreferences::with_default(PrefPair::half()),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(e.fingerprint(), rebuilt.fingerprint());
        // A preference edit moves only the preference field.
        let fp_before = e.fingerprint();
        e.set_preference(DimId(0), ValueId(0), ValueId(1), 0.9, 0.05).unwrap();
        let fp_after = e.fingerprint();
        assert_eq!(fp_before.dataset, fp_after.dataset);
        assert_ne!(fp_before.preferences, fp_after.preferences);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_execution() {
        let e = engine(EngineOptions::default());
        // Prime the cache so execution time stays small relative to the
        // join window; then hammer one signature from many threads while
        // the leader holds the flight open.
        const THREADS: usize = 8;
        const ROUNDS: usize = 20;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
                        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
                    }
                });
            }
        });
        let m = e.metrics();
        let total = (THREADS * ROUNDS) as u64;
        assert_eq!(m.requests, total);
        assert_eq!(m.completed + m.coalesced, total, "every submission answered exactly once");
        assert_eq!(m.admitted, m.completed);
        assert_eq!(m.failed, 0);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn coalescing_off_runs_every_submission_solo() {
        let e = engine(EngineOptions::default().with_coalescing(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    e.run(Request::all_sky(QueryOptions::default())).unwrap();
                });
            }
        });
        let m = e.metrics();
        assert_eq!(m.requests, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.coalesce_led, 0);
    }

    #[test]
    fn every_submission_lands_in_exactly_one_terminal_counter() {
        // Mixed fates: successes, overload sheds, cost sheds, and
        // query-layer failures — the request-conservation regression test
        // for the old double-count of a shed-after-admission request.
        let e = engine(EngineOptions::default().with_max_in_flight(1));
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        e.run(Request::threshold(7.0, ThresholdOptions::default())).unwrap_err(); // invalid τ
        e.run(Request::top_k(0, TopKOptions::default())).unwrap_err(); // k = 0
        let m = e.metrics();
        assert_eq!(m.requests, 3);
        assert_eq!(
            m.completed + m.coalesced + m.shed_overload + m.shed_cost + m.failed,
            m.requests,
            "terminal counters must partition submissions: {m:?}"
        );
        assert_eq!(m.failed, 2);
    }
}
