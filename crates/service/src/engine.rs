//! The resident [`Engine`]: load once, serve many.
//!
//! `Engine::new` pays the per-dataset costs exactly once — duplicate
//! validation, dense value codes, posting lists and the `pr_strict` memo
//! of the [`BatchCoinContext`], plus an empty cross-request
//! [`ComponentCache`] — and then serves any number of concurrent
//! [`Request`]s from `&self`. All mutability is interior (atomics, the
//! sharded cache, a poison-recovering stats mutex), so one engine handle
//! can be shared across threads with a plain `Arc` or scoped borrows.
//!
//! ## Admission control
//!
//! Two deterministic gates shed load *before* any query work runs:
//!
//! 1. **in-flight ceiling** — at most
//!    [`EngineOptions::max_in_flight`] requests run concurrently; the
//!    `max_in_flight + 1`-th arrival gets
//!    [`ServiceError::Overloaded`] immediately;
//! 2. **predicted-cost ceiling** — each request's cost is predicted from
//!    the sampler cost model (the same `Σ 2^|g|`-vs-samples model the
//!    planner budgets with, collapsed to its admission-time upper bound:
//!    every object, `n − 1` attackers, `(n − 1)·d` coins) and compared
//!    against [`EngineOptions::max_predicted_cost`].
//!
//! Both decisions depend only on the request and the dataset dimensions —
//! never on timing — so shedding is reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use presky_core::batch::BatchCoinContext;
use presky_core::preference::PreferenceModel;
use presky_core::table::Table;

use presky_approx::sampler::SamOptions;
use presky_exact::cache::{ComponentCache, DEFAULT_BYTE_CAP};
use presky_query::engine::{
    all_sky_resident, sky_one_resident, threshold_resident, top_k_resident,
};
use presky_query::prob_skyline::Algorithm;

use crate::error::{Result, ServiceError};
use crate::metrics::{get, inc, Metrics, MetricsSnapshot};
use crate::request::{Outcome, Query, Request, Response, Value};

/// Construction-time configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Maximum concurrently running requests; arrivals beyond this are
    /// shed with [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Per-request predicted-cost ceiling (machine-word operations);
    /// `None` disables the gate.
    pub max_predicted_cost: Option<u64>,
    /// Byte cap of the cross-request component cache.
    pub cache_bytes: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self { max_in_flight: 64, max_predicted_cost: None, cache_bytes: DEFAULT_BYTE_CAP }
    }
}

impl EngineOptions {
    /// Chainable: set the in-flight ceiling.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Chainable: set (or clear) the predicted-cost ceiling.
    pub fn with_max_predicted_cost(mut self, max_predicted_cost: Option<u64>) -> Self {
        self.max_predicted_cost = max_predicted_cost;
        self
    }

    /// Chainable: set the component-cache byte cap.
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }
}

/// A long-lived query service over one dataset.
///
/// See the [module docs](self) for the admission and budget semantics.
#[derive(Debug)]
pub struct Engine<M> {
    table: Table,
    prefs: M,
    ctx: BatchCoinContext,
    cache: ComponentCache,
    opts: EngineOptions,
    metrics: Metrics,
    in_flight: AtomicUsize,
}

/// Releases one in-flight slot even if the query worker panics.
struct InFlightSlot<'a>(&'a AtomicUsize);

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<M: PreferenceModel + Sync> Engine<M> {
    /// Index `table` once and stand up an empty component cache.
    pub fn new(table: Table, prefs: M, opts: EngineOptions) -> Result<Self> {
        let ctx = BatchCoinContext::build(&table).map_err(presky_query::error::QueryError::from)?;
        Ok(Self {
            table,
            prefs,
            ctx,
            cache: ComponentCache::with_byte_cap(opts.cache_bytes),
            opts,
            metrics: Metrics::default(),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// The dataset this engine serves.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Objects in the dataset.
    pub fn n_objects(&self) -> usize {
        self.ctx.n_objects()
    }

    /// Serve one request from this thread.
    ///
    /// Passes both admission gates, pins the relative [`Budget`] to an
    /// absolute engine budget, runs the resident pipeline against the
    /// shared context and cache, and classifies the conclusion. Any number
    /// of threads may call this concurrently on one engine.
    ///
    /// [`Budget`]: crate::request::Budget
    pub fn run(&self, request: Request) -> Result<Response> {
        if let Some(max) = self.opts.max_predicted_cost {
            let predicted = self.predicted_cost(&request.query);
            if predicted > max {
                inc(&self.metrics.shed_cost);
                return Err(ServiceError::CostCeiling { predicted, max });
            }
        }
        let previous = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let slot = InFlightSlot(&self.in_flight);
        if previous >= self.opts.max_in_flight {
            inc(&self.metrics.shed_overload);
            return Err(ServiceError::Overloaded {
                in_flight: previous,
                max: self.opts.max_in_flight,
            });
        }
        inc(&self.metrics.admitted);

        let admitted_at = Instant::now();
        let budget = request.budget.to_engine_budget(admitted_at);
        let cache = Some(&self.cache);
        let (value, stats, truncated) = match request.query {
            Query::SkyOne { target, opts } => {
                let out = sky_one_resident(&self.ctx, &self.prefs, target, opts, cache, budget)?;
                (Value::Sky(out.results.into_iter().next().flatten()), out.stats, out.truncated)
            }
            Query::AllSky { opts } => {
                let out = all_sky_resident(&self.ctx, &self.prefs, opts, cache, budget)?;
                (Value::AllSky(out.results), out.stats, out.truncated)
            }
            Query::Threshold { tau, opts } => {
                let out = threshold_resident(&self.ctx, &self.prefs, tau, opts, cache, budget)?;
                (Value::Threshold(out.results), out.stats, out.truncated)
            }
            Query::TopK { k, opts } => {
                let out = top_k_resident(&self.ctx, &self.prefs, k, opts, cache, budget)?;
                (Value::TopK(out.results.into_iter().flatten().collect()), out.stats, out.truncated)
            }
        };
        drop(slot);

        self.metrics.merge_stats(&stats);
        inc(&self.metrics.completed);
        let outcome = Outcome::classify(value, truncated);
        if !outcome.complete() {
            inc(&self.metrics.deadline_misses);
        }
        Ok(Response { outcome, stats, elapsed: admitted_at.elapsed() })
    }

    /// Predicted cost of a request, in the sampler cost model's
    /// machine-word operations.
    ///
    /// This is the admission-time collapse of the planner's model: the
    /// per-object `Σ 2^|g|`-vs-sampling comparison needs the prepared
    /// component structure, which does not exist yet, so every object is
    /// charged its sampling upper bound (`n − 1` attackers over
    /// `(n − 1)·d` coins). Deterministic in the request and the dataset.
    pub fn predicted_cost(&self, query: &Query) -> u64 {
        let n = self.ctx.n_objects();
        let d = self.ctx.dimensionality();
        let attackers = n.saturating_sub(1);
        let coins = attackers.saturating_mul(d);
        let per_object = |sam: SamOptions| sam.predicted_cost(attackers, coins).max(1);
        let policy_sam = |algo: &Algorithm| match algo {
            Algorithm::Adaptive { sam, .. } | Algorithm::Sampling(sam) => *sam,
            Algorithm::Exact { .. } => SamOptions::default(),
        };
        match query {
            Query::SkyOne { opts, .. } => per_object(policy_sam(&opts.algorithm)),
            Query::AllSky { opts } => {
                (n as u64).saturating_mul(per_object(policy_sam(&opts.algorithm)))
            }
            Query::Threshold { opts, .. } => (n as u64).saturating_mul(per_object(opts.fallback)),
            Query::TopK { k, opts } => {
                let scout = (n as u64).saturating_mul(per_object(opts.scout));
                let refine = (k.saturating_mul(opts.overfetch).min(n) as u64)
                    .saturating_mul(per_object(opts.refine));
                scout.saturating_add(refine)
            }
        }
    }

    /// A point-in-time view of the engine's counters and cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            admitted: get(&self.metrics.admitted),
            completed: get(&self.metrics.completed),
            deadline_misses: get(&self.metrics.deadline_misses),
            shed_overload: get(&self.metrics.shed_overload),
            shed_cost: get(&self.metrics.shed_cost),
            in_flight: self.in_flight.load(Ordering::Acquire),
            stats: self.metrics.stats_snapshot(),
            cache_entries: self.cache.len(),
            cache_bytes: self.cache.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::types::ObjectId;
    use presky_query::prob_skyline::QueryOptions;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;
    use crate::request::Budget;

    fn engine(opts: EngineOptions) -> Engine<TablePreferences> {
        let table =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        Engine::new(table, TablePreferences::with_default(PrefPair::half()), opts).unwrap()
    }

    #[test]
    fn serves_every_request_shape() {
        let e = engine(EngineOptions::default());
        let r = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap();
        assert!((r.outcome.value().as_sky().unwrap().sky - 3.0 / 16.0).abs() < 1e-12);
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
        let r = e.run(Request::threshold(0.15, ThresholdOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_threshold().unwrap().len(), 5);
        let r = e.run(Request::top_k(2, TopKOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_top_k().unwrap().len(), 2);
        let m = e.metrics();
        assert_eq!(m.admitted, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn cost_ceiling_sheds_deterministically() {
        let e = engine(EngineOptions::default().with_max_predicted_cost(Some(1)));
        let err = e.run(Request::all_sky(QueryOptions::default())).unwrap_err();
        assert!(matches!(err, ServiceError::CostCeiling { .. }));
        assert!(err.is_shed());
        assert_eq!(e.metrics().shed_cost, 1);
        assert_eq!(e.metrics().admitted, 0);
    }

    #[test]
    fn zero_in_flight_sheds_everything_and_slots_are_released() {
        let e = engine(EngineOptions::default().with_max_in_flight(0));
        for _ in 0..3 {
            let err = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap_err();
            assert!(matches!(err, ServiceError::Overloaded { .. }));
        }
        let m = e.metrics();
        assert_eq!(m.shed_overload, 3);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn query_errors_propagate_and_engine_survives() {
        let e = engine(EngineOptions::default());
        assert!(matches!(
            e.run(Request::threshold(1.5, ThresholdOptions::default())),
            Err(ServiceError::Query(_))
        ));
        assert!(matches!(
            e.run(Request::top_k(0, TopKOptions::default())),
            Err(ServiceError::Query(_))
        ));
        // The engine keeps serving; the failed requests released their slots.
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(r.outcome.complete());
        assert_eq!(e.metrics().in_flight, 0);
    }

    #[test]
    fn tiny_deadline_concludes_deadline_exceeded_never_wrong() {
        let e = engine(EngineOptions::default());
        let full = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let budget = Budget::default().with_deadline(Some(std::time::Duration::ZERO));
        let r = e.run(Request::all_sky(QueryOptions::default()).with_budget(budget)).unwrap();
        match &r.outcome {
            Outcome::DeadlineExceeded { partial, truncated } => {
                assert!(*truncated > 0);
                let got = partial.as_all_sky().unwrap();
                let want = full.outcome.value().as_all_sky().unwrap();
                for (g, w) in got.iter().zip(want) {
                    if let Some(g) = g {
                        assert_eq!(g.sky.to_bits(), w.unwrap().sky.to_bits());
                    }
                }
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.metrics().deadline_misses, 1);
    }

    #[test]
    fn cache_stays_warm_across_requests() {
        let e = engine(EngineOptions::default());
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let cold = e.metrics();
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let warm = e.metrics();
        assert!(warm.stats.cache_hits > cold.stats.cache_hits);
        assert!(warm.cache_hit_rate() > 0.0);
        assert!(warm.cache_entries > 0);
    }
}
