//! The resident [`Engine`]: load once, serve many.
//!
//! `Engine::new` pays the per-dataset costs exactly once — duplicate
//! validation, dense value codes, posting lists and the `pr_strict` memo
//! of the [`BatchCoinContext`], plus an empty cross-request
//! [`ComponentCache`] — and then serves any number of concurrent
//! [`Request`]s from `&self`. All mutability is interior (atomics, the
//! sharded cache, a poison-recovering stats mutex), so one engine handle
//! can be shared across threads with a plain `Arc` or scoped borrows.
//!
//! ## Admission control
//!
//! Two deterministic gates shed load *before* any query work runs:
//!
//! 1. **in-flight ceiling** — at most
//!    [`EngineOptions::max_in_flight`] requests run concurrently; the
//!    `max_in_flight + 1`-th arrival gets
//!    [`ServiceError::Overloaded`] immediately;
//! 2. **predicted-cost ceiling** — each request's cost is predicted from
//!    the sampler cost model (the same `Σ 2^|g|`-vs-samples model the
//!    planner budgets with, collapsed to its admission-time upper bound:
//!    every object, `n − 1` attackers, `(n − 1)·d` coins) and compared
//!    against [`EngineOptions::max_predicted_cost`].
//!
//! Both decisions depend only on the request and the dataset dimensions —
//! never on timing — so shedding is reproducible.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use presky_core::batch::BatchCoinContext;
use presky_core::pool::ThreadBudget;
use presky_core::preference::PreferenceModel;
use presky_core::table::Table;
use presky_core::types::DimId;

use presky_approx::sampler::SamOptions;
use presky_exact::cache::{ComponentCache, DEFAULT_BYTE_CAP};
use presky_exact::snapshot::{self, Fnv};
use presky_query::engine::{
    all_sky_range_resident, all_sky_resident, sky_one_resident, threshold_resident, top_k_resident,
    EngineBudget, ResidentOutcome,
};
use presky_query::prob_skyline::{Algorithm, QueryOptions, SkyResult};

use crate::coalesce::{request_signature, Join, SingleFlight};
use crate::error::{Result, ServiceError};
use crate::metrics::{get, inc, Metrics, MetricsSnapshot};
use crate::request::{Outcome, Query, Request, Response, Value};

/// Construction-time configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Maximum concurrently running requests; arrivals beyond this are
    /// shed with [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Per-request predicted-cost ceiling (machine-word operations);
    /// `None` disables the gate.
    pub max_predicted_cost: Option<u64>,
    /// Byte cap of the cross-request component cache.
    pub cache_bytes: usize,
    /// Single-flight coalescing of identical concurrent requests (see
    /// [`crate::coalesce`]): on by default; off makes every submission
    /// execute solo (the A/B baseline for the `serve` bench).
    pub coalescing: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            max_predicted_cost: None,
            cache_bytes: DEFAULT_BYTE_CAP,
            coalescing: true,
        }
    }
}

impl EngineOptions {
    /// Chainable: set the in-flight ceiling.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Chainable: set (or clear) the predicted-cost ceiling.
    pub fn with_max_predicted_cost(mut self, max_predicted_cost: Option<u64>) -> Self {
        self.max_predicted_cost = max_predicted_cost;
        self
    }

    /// Chainable: set the component-cache byte cap.
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Chainable: enable or disable single-flight coalescing.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }
}

/// A long-lived query service over one dataset.
///
/// See the [module docs](self) for the admission and budget semantics.
#[derive(Debug)]
pub struct Engine<M> {
    table: Table,
    prefs: M,
    ctx: BatchCoinContext,
    cache: ComponentCache,
    opts: EngineOptions,
    metrics: Metrics,
    in_flight: AtomicUsize,
    flights: Arc<SingleFlight>,
    fingerprint: OnceLock<u64>,
}

/// Per-dimension cap on the value universe hashed pairwise into the
/// engine [`fingerprint`](Engine::fingerprint). Categorical domains (the
/// warmstart regime) sit far below it; huge numeric domains hash a
/// deterministic prefix of the grid plus the universe size.
pub const FINGERPRINT_PAIR_CAP: usize = 128;

/// Releases one in-flight slot even if the query worker panics.
struct InFlightSlot<'a>(&'a AtomicUsize);

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<M: PreferenceModel + Sync> Engine<M> {
    /// Index `table` once and stand up an empty component cache.
    pub fn new(table: Table, prefs: M, opts: EngineOptions) -> Result<Self> {
        let ctx = BatchCoinContext::build(&table).map_err(presky_query::error::QueryError::from)?;
        Ok(Self::with_parts(table, prefs, ctx, opts))
    }

    /// Assemble an engine around an already-built context — how the
    /// sharded deployment replicates coin indexes without re-validating
    /// the table per shard.
    pub(crate) fn with_parts(
        table: Table,
        prefs: M,
        ctx: BatchCoinContext,
        opts: EngineOptions,
    ) -> Self {
        Self {
            table,
            prefs,
            ctx,
            cache: ComponentCache::with_byte_cap(opts.cache_bytes),
            opts,
            metrics: Metrics::default(),
            in_flight: AtomicUsize::new(0),
            flights: Arc::default(),
            fingerprint: OnceLock::new(),
        }
    }

    /// [`Engine::new`], then replace the empty component cache with a
    /// snapshot loaded from `path` (see [`presky_exact::snapshot`]).
    ///
    /// The snapshot must carry this engine's [`fingerprint`]; a snapshot
    /// taken over a different dataset or preference model is refused with
    /// [`ServiceError::Warmstart`] and the engine is **not** constructed.
    /// A fresh engine warm-started this way serves its first requests at
    /// the steady-state cache hit rate instead of paying the cold pass.
    ///
    /// [`fingerprint`]: Engine::fingerprint
    pub fn with_warm_cache(
        table: Table,
        prefs: M,
        opts: EngineOptions,
        path: &Path,
    ) -> Result<Self> {
        let mut engine = Self::new(table, prefs, opts)?;
        engine.load_cache_from(path)?;
        Ok(engine)
    }

    /// Serialize the live component cache to `path`, keyed by this
    /// engine's [`fingerprint`](Engine::fingerprint). The file is
    /// versioned and checksummed; equal cache contents produce
    /// byte-identical files.
    pub fn save_cache_snapshot(&self, path: &Path) -> Result<()> {
        snapshot::save_to_path(&self.cache, self.fingerprint(), path)?;
        Ok(())
    }

    /// Identity hash of the dataset **and** the preference model, the key
    /// a cache snapshot is saved and validated under.
    ///
    /// Covers the dense-coded table (via
    /// [`BatchCoinContext::fingerprint`]) plus the `pr_strict` grid over
    /// each dimension's value universe — the exact inputs from which
    /// component signatures (and hence cache keys) are built. Dimensions
    /// with more than [`FINGERPRINT_PAIR_CAP`] distinct values hash the
    /// grid of their first `FINGERPRINT_PAIR_CAP` dense codes plus the
    /// universe size; this keeps the hash linear-ish on huge numeric
    /// domains. A fingerprint collision can only ever cost cache *misses*,
    /// never wrong values: cache keys embed every probability bit they
    /// depend on, so a stale entry simply fails to match.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = Fnv::new();
            h.eat(&self.ctx.fingerprint().to_le_bytes());
            let d = self.ctx.dimensionality();
            h.eat(&(d as u64).to_le_bytes());
            for j in 0..d {
                let values = self.ctx.dim_values(j);
                h.eat(&(values.len() as u64).to_le_bytes());
                let head = &values[..values.len().min(FINGERPRINT_PAIR_CAP)];
                for &a in head {
                    for &b in head {
                        if a != b {
                            let p = self.prefs.pr_strict(DimId(j as u32), a, b);
                            h.eat(&p.to_bits().to_le_bytes());
                        }
                    }
                }
            }
            h.finish()
        })
    }

    /// The dataset this engine serves.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The live component cache (sharded driver + tests).
    pub(crate) fn cache(&self) -> &ComponentCache {
        &self.cache
    }

    /// Replace the component cache with a snapshot from `path` (refuses a
    /// fingerprint mismatch). Backs both warm-start constructors.
    pub(crate) fn load_cache_from(&mut self, path: &Path) -> Result<()> {
        self.cache = snapshot::load_from_path(path, self.fingerprint(), self.opts.cache_bytes)?;
        Ok(())
    }

    /// The internal counter block (sharded driver's request attribution).
    pub(crate) fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// Objects in the dataset.
    pub fn n_objects(&self) -> usize {
        self.ctx.n_objects()
    }

    /// Serve one request from this thread.
    ///
    /// With coalescing enabled (the default), identical concurrent
    /// submissions share one execution: the first becomes the leader and
    /// runs the solo path; the rest block and
    /// receive the leader's [`Response`] (own `elapsed`, leader's value
    /// and stats), provided the leader's [`Budget`] covers theirs — see
    /// [`crate::coalesce`] for the exact rule. A failed leader sends its
    /// followers to solo execution; every submission is counted exactly
    /// once in the metrics. Any number of threads may call this
    /// concurrently on one engine.
    ///
    /// [`Budget`]: crate::request::Budget
    pub fn run(&self, request: Request) -> Result<Response> {
        inc(&self.metrics.requests);
        if !self.opts.coalescing {
            return self.run_solo(&request);
        }
        let Some(key) = request_signature(&request) else {
            return self.run_solo(&request);
        };
        match self.flights.join(key, request.budget) {
            Join::Leader(guard) => {
                let outcome = self.run_solo(&request);
                let followers = guard.publish(outcome.as_ref().ok().cloned());
                if followers > 0 {
                    inc(&self.metrics.coalesce_led);
                }
                outcome
            }
            Join::Follower(flight) => {
                let started = Instant::now();
                match flight.wait() {
                    Some(response) => {
                        inc(&self.metrics.coalesced);
                        Ok(Response { elapsed: started.elapsed(), ..response })
                    }
                    // The leader failed without publishing; this
                    // submission still owes its caller an answer (and was
                    // already counted in `requests`), so run it solo.
                    None => self.run_solo(&request),
                }
            }
            Join::Bypass => self.run_solo(&request),
        }
    }

    /// Execute one request outside the single-flight layer: admission
    /// gates, budget pinning, the resident pipeline, outcome
    /// classification. Exactly one terminal counter (`completed`, a shed
    /// counter, or `failed`) is incremented per call.
    fn run_solo(&self, request: &Request) -> Result<Response> {
        let result = self.run_admitted(request);
        if let Err(e) = &result {
            if !e.is_shed() {
                inc(&self.metrics.failed);
            }
        }
        result
    }

    fn run_admitted(&self, request: &Request) -> Result<Response> {
        if let Some(max) = self.opts.max_predicted_cost {
            let predicted = self.predicted_cost(&request.query);
            if predicted > max {
                inc(&self.metrics.shed_cost);
                return Err(ServiceError::CostCeiling { predicted, max });
            }
        }
        let previous = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let slot = InFlightSlot(&self.in_flight);
        if previous >= self.opts.max_in_flight {
            inc(&self.metrics.shed_overload);
            return Err(ServiceError::Overloaded {
                in_flight: previous,
                max: self.opts.max_in_flight,
            });
        }
        inc(&self.metrics.admitted);

        let admitted_at = Instant::now();
        let budget = request.budget.to_engine_budget(admitted_at);
        let cache = Some(&self.cache);
        let (value, stats, truncated) = match &request.query {
            Query::SkyOne { target, opts } => {
                let out = sky_one_resident(&self.ctx, &self.prefs, *target, *opts, cache, budget)?;
                (Value::Sky(out.results.into_iter().next().flatten()), out.stats, out.truncated)
            }
            Query::AllSky { opts } => {
                let out = all_sky_resident(&self.ctx, &self.prefs, *opts, cache, budget)?;
                (Value::AllSky(out.results), out.stats, out.truncated)
            }
            Query::Threshold { tau, opts } => {
                let out = threshold_resident(&self.ctx, &self.prefs, *tau, *opts, cache, budget)?;
                (Value::Threshold(out.results), out.stats, out.truncated)
            }
            Query::TopK { k, opts } => {
                let out = top_k_resident(&self.ctx, &self.prefs, *k, *opts, cache, budget)?;
                (Value::TopK(out.results.into_iter().flatten().collect()), out.stats, out.truncated)
            }
        };
        drop(slot);

        self.metrics.merge_stats(&stats);
        inc(&self.metrics.completed);
        let outcome = Outcome::classify(value, truncated);
        if !outcome.complete() {
            inc(&self.metrics.deadline_misses);
        }
        Ok(Response { outcome, stats, elapsed: admitted_at.elapsed() })
    }

    /// Predicted cost of a request, in the sampler cost model's
    /// machine-word operations.
    ///
    /// This is the admission-time collapse of the planner's model: the
    /// per-object `Σ 2^|g|`-vs-sampling comparison needs the prepared
    /// component structure, which does not exist yet, so every object is
    /// charged its sampling upper bound (`n − 1` attackers over
    /// `(n − 1)·d` coins). Deterministic in the request and the dataset.
    pub fn predicted_cost(&self, query: &Query) -> u64 {
        let n = self.ctx.n_objects();
        let d = self.ctx.dimensionality();
        let attackers = n.saturating_sub(1);
        let coins = attackers.saturating_mul(d);
        let per_object = |sam: SamOptions| sam.predicted_cost(attackers, coins).max(1);
        let policy_sam = |algo: &Algorithm| match algo {
            Algorithm::Adaptive { sam, .. } | Algorithm::Sampling(sam) => *sam,
            Algorithm::Exact { .. } => SamOptions::default(),
        };
        match query {
            Query::SkyOne { opts, .. } => per_object(policy_sam(&opts.algorithm)),
            Query::AllSky { opts } => {
                (n as u64).saturating_mul(per_object(policy_sam(&opts.algorithm)))
            }
            Query::Threshold { opts, .. } => (n as u64).saturating_mul(per_object(opts.fallback)),
            Query::TopK { k, opts } => {
                let scout = (n as u64).saturating_mul(per_object(opts.scout));
                let refine = (k.saturating_mul(opts.overfetch).min(n) as u64)
                    .saturating_mul(per_object(opts.refine));
                scout.saturating_add(refine)
            }
        }
    }

    /// One shard's slice of a fanned-out all-sky request (global indices
    /// in `range`, `workers` threads, spare capacity via the shared
    /// `pool`). Admission here is the in-flight ceiling only: the owning
    /// sharded driver applies the cost gate once for the whole request
    /// rather than once per shard. `budget` is already absolute, so every
    /// shard of one request shares one wall-clock cut-off.
    pub(crate) fn run_all_sky_range(
        &self,
        range: std::ops::Range<usize>,
        workers: usize,
        opts: QueryOptions,
        budget: EngineBudget,
        pool: &Arc<ThreadBudget>,
    ) -> Result<ResidentOutcome<SkyResult>> {
        inc(&self.metrics.requests);
        let previous = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let slot = InFlightSlot(&self.in_flight);
        if previous >= self.opts.max_in_flight {
            inc(&self.metrics.shed_overload);
            return Err(ServiceError::Overloaded {
                in_flight: previous,
                max: self.opts.max_in_flight,
            });
        }
        inc(&self.metrics.admitted);
        let out = all_sky_range_resident(
            &self.ctx,
            &self.prefs,
            range,
            workers,
            opts,
            Some(&self.cache),
            budget,
            pool,
        )
        .map_err(|e| {
            inc(&self.metrics.failed);
            ServiceError::from(e)
        })?;
        drop(slot);
        self.metrics.merge_stats(&out.stats);
        inc(&self.metrics.completed);
        if out.truncated > 0 {
            inc(&self.metrics.deadline_misses);
        }
        Ok(out)
    }

    /// A point-in-time view of the engine's counters and cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: get(&self.metrics.requests),
            admitted: get(&self.metrics.admitted),
            completed: get(&self.metrics.completed),
            coalesced: get(&self.metrics.coalesced),
            coalesce_led: get(&self.metrics.coalesce_led),
            deadline_misses: get(&self.metrics.deadline_misses),
            shed_overload: get(&self.metrics.shed_overload),
            shed_cost: get(&self.metrics.shed_cost),
            failed: get(&self.metrics.failed),
            in_flight: self.in_flight.load(Ordering::Acquire),
            stats: self.metrics.stats_snapshot(),
            cache_entries: self.cache.len(),
            cache_bytes: self.cache.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use presky_core::preference::{PrefPair, TablePreferences};
    use presky_core::types::ObjectId;
    use presky_query::prob_skyline::QueryOptions;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;
    use crate::request::Budget;

    fn engine(opts: EngineOptions) -> Engine<TablePreferences> {
        let table =
            Table::from_rows_raw(2, &[vec![0, 0], vec![1, 1], vec![1, 0], vec![2, 2], vec![0, 1]])
                .unwrap();
        Engine::new(table, TablePreferences::with_default(PrefPair::half()), opts).unwrap()
    }

    #[test]
    fn serves_every_request_shape() {
        let e = engine(EngineOptions::default());
        let r = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap();
        assert!((r.outcome.value().as_sky().unwrap().sky - 3.0 / 16.0).abs() < 1e-12);
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
        let r = e.run(Request::threshold(0.15, ThresholdOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_threshold().unwrap().len(), 5);
        let r = e.run(Request::top_k(2, TopKOptions::default())).unwrap();
        assert_eq!(r.outcome.value().as_top_k().unwrap().len(), 2);
        let m = e.metrics();
        assert_eq!(m.admitted, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn cost_ceiling_sheds_deterministically() {
        let e = engine(EngineOptions::default().with_max_predicted_cost(Some(1)));
        let err = e.run(Request::all_sky(QueryOptions::default())).unwrap_err();
        assert!(matches!(err, ServiceError::CostCeiling { .. }));
        assert!(err.is_shed());
        assert_eq!(e.metrics().shed_cost, 1);
        assert_eq!(e.metrics().admitted, 0);
    }

    #[test]
    fn zero_in_flight_sheds_everything_and_slots_are_released() {
        let e = engine(EngineOptions::default().with_max_in_flight(0));
        for _ in 0..3 {
            let err = e.run(Request::sky_one(ObjectId(0), QueryOptions::default())).unwrap_err();
            assert!(matches!(err, ServiceError::Overloaded { .. }));
        }
        let m = e.metrics();
        assert_eq!(m.shed_overload, 3);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn query_errors_propagate_and_engine_survives() {
        let e = engine(EngineOptions::default());
        assert!(matches!(
            e.run(Request::threshold(1.5, ThresholdOptions::default())),
            Err(ServiceError::Query(_))
        ));
        assert!(matches!(
            e.run(Request::top_k(0, TopKOptions::default())),
            Err(ServiceError::Query(_))
        ));
        // The engine keeps serving; the failed requests released their slots.
        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(r.outcome.complete());
        assert_eq!(e.metrics().in_flight, 0);
    }

    #[test]
    fn tiny_deadline_concludes_deadline_exceeded_never_wrong() {
        let e = engine(EngineOptions::default());
        let full = e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let budget = Budget::default().with_deadline(Some(std::time::Duration::ZERO));
        let r = e.run(Request::all_sky(QueryOptions::default()).with_budget(budget)).unwrap();
        match &r.outcome {
            Outcome::DeadlineExceeded { partial, truncated } => {
                assert!(*truncated > 0);
                let got = partial.as_all_sky().unwrap();
                let want = full.outcome.value().as_all_sky().unwrap();
                for (g, w) in got.iter().zip(want) {
                    if let Some(g) = g {
                        assert_eq!(g.sky.to_bits(), w.unwrap().sky.to_bits());
                    }
                }
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.metrics().deadline_misses, 1);
    }

    #[test]
    fn cache_stays_warm_across_requests() {
        let e = engine(EngineOptions::default());
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let cold = e.metrics();
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        let warm = e.metrics();
        assert!(warm.stats.cache_hits > cold.stats.cache_hits);
        assert!(warm.cache_hit_rate() > 0.0);
        assert!(warm.cache_entries > 0);
    }

    #[test]
    fn warm_cache_round_trips_and_refuses_mismatched_fingerprints() {
        let dir = std::env::temp_dir().join(format!("presky-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snapshot");

        let cold = engine(EngineOptions::default());
        let cold_resp = cold.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(cold.metrics().cache_entries > 0, "fixture must populate the cache");
        cold.save_cache_snapshot(&path).unwrap();

        let table = cold.table().clone();
        let warm = Engine::with_warm_cache(
            table.clone(),
            TablePreferences::with_default(PrefPair::half()),
            EngineOptions::default(),
            &path,
        )
        .unwrap();
        assert_eq!(warm.metrics().cache_entries, cold.metrics().cache_entries);
        assert_eq!(warm.fingerprint(), cold.fingerprint());
        // First pass on the warm engine: every probe hits, values are
        // bit-identical to the cold engine's answer.
        let warm_resp = warm.run(Request::all_sky(QueryOptions::default())).unwrap();
        let m = warm.metrics();
        assert_eq!(m.stats.cache_hits, m.stats.cache_probes);
        let a = cold_resp.outcome.value().as_all_sky().unwrap();
        let b = warm_resp.outcome.value().as_all_sky().unwrap();
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.unwrap().sky.to_bits(), y.unwrap().sky.to_bits());
        }
        // Logical work accounting replays identically (hits re-add the
        // cached joints).
        assert_eq!(
            cold_resp.stats.joints_computed, warm_resp.stats.joints_computed,
            "joints_computed must be deterministic across cold/warm caches"
        );

        // A different preference model is a different fingerprint.
        let other = Engine::with_warm_cache(
            table,
            TablePreferences::with_default(PrefPair::new(0.25, 0.25).unwrap()),
            EngineOptions::default(),
            &path,
        );
        assert!(matches!(other, Err(ServiceError::Warmstart { .. })), "got {other:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_execution() {
        let e = engine(EngineOptions::default());
        // Prime the cache so execution time stays small relative to the
        // join window; then hammer one signature from many threads while
        // the leader holds the flight open.
        const THREADS: usize = 8;
        const ROUNDS: usize = 20;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        let r = e.run(Request::all_sky(QueryOptions::default())).unwrap();
                        assert_eq!(r.outcome.value().as_all_sky().unwrap().len(), 5);
                    }
                });
            }
        });
        let m = e.metrics();
        let total = (THREADS * ROUNDS) as u64;
        assert_eq!(m.requests, total);
        assert_eq!(m.completed + m.coalesced, total, "every submission answered exactly once");
        assert_eq!(m.admitted, m.completed);
        assert_eq!(m.failed, 0);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn coalescing_off_runs_every_submission_solo() {
        let e = engine(EngineOptions::default().with_coalescing(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    e.run(Request::all_sky(QueryOptions::default())).unwrap();
                });
            }
        });
        let m = e.metrics();
        assert_eq!(m.requests, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.coalesce_led, 0);
    }

    #[test]
    fn every_submission_lands_in_exactly_one_terminal_counter() {
        // Mixed fates: successes, overload sheds, cost sheds, and
        // query-layer failures — the request-conservation regression test
        // for the old double-count of a shed-after-admission request.
        let e = engine(EngineOptions::default().with_max_in_flight(1));
        e.run(Request::all_sky(QueryOptions::default())).unwrap();
        e.run(Request::threshold(7.0, ThresholdOptions::default())).unwrap_err(); // invalid τ
        e.run(Request::top_k(0, TopKOptions::default())).unwrap_err(); // k = 0
        let m = e.metrics();
        assert_eq!(m.requests, 3);
        assert_eq!(
            m.completed + m.coalesced + m.shed_overload + m.shed_cost + m.failed,
            m.requests,
            "terminal counters must partition submissions: {m:?}"
        );
        assert_eq!(m.failed, 2);
    }
}
