//! Signature-keyed single-flight request coalescing.
//!
//! Duplicate-heavy traffic is the realistic serving shape for this
//! workload: per-user preference elicitation produces many users with the
//! *same* elicited model asking the *same* question (the all-sky batch,
//! the τ-membership list), often at the same moment. The component cache
//! already dedups identical exact sub-results *after* preparation; this
//! module lifts the same canonical-signature idea to whole requests, so N
//! identical concurrent submissions run the pipeline **once**.
//!
//! ## Protocol
//!
//! Requests are keyed by a canonical byte serialisation of their [`Query`]
//! (every option field in declaration order, little-endian — the same
//! content-only discipline as `presky_exact::signature`). The first
//! submission of a key becomes the **leader** and executes normally; later
//! submissions with the same key become **followers** and block until the
//! leader publishes its [`Response`], which they return with their own
//! `elapsed`. A request whose options embed an absolute `deadline_at`
//! has no canonical serialisation (wall-clock instants are never equal
//! across submissions) and bypasses coalescing entirely.
//!
//! ## Budget rule
//!
//! A follower may only take the leader's response if the leader's budget
//! *covers* its own — the leader's response is then at least as complete
//! as the follower's solo run would have been, and every present slot is
//! bit-identical ([`Budget::covers`]; wall-clock allowances are compared
//! as absolute cut-offs, `leader_admission + leader_deadline ≥
//! follower_arrival + follower_deadline`, so a follower never inherits a
//! response truncated earlier than its own allowance). An uncovered
//! submission bypasses the flight and runs solo.
//!
//! ## Failure
//!
//! A leader that errors (or panics — the guard publishes on drop)
//! publishes "no response"; its followers fall through to solo execution.
//! The engine counts each submission exactly once whatever path it takes.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use presky_query::prob_skyline::Algorithm;

use crate::request::{Budget, Query, Request, Response};

/// Canonical byte signature of a request's query, or `None` when the
/// query is not coalescible (an embedded absolute `deadline_at`).
///
/// The budget is deliberately **not** part of the key: submissions with
/// different budgets may still share one execution under the
/// [`Budget::covers`] rule, checked at join time. The **epoch** the
/// submission pinned at admission *is* part of the key: a follower may
/// only take a leader's response if both pinned the same dataset version,
/// otherwise a write committed between the leader's start and the
/// follower's join would hand the follower answers from an epoch it never
/// pinned. The resolved **overlay fingerprint** is part of the key for
/// the same reason: identical queries under different tenant overlays
/// compute different values and must not share a flight. It is the
/// overlay's *content* hash, not the tenant id — same-tenant duplicates
/// coalesce, and so do tenants whose overlays agree bit-for-bit (their
/// responses are bit-identical by construction); an empty overlay hashes
/// to `0` and coalesces with untenanted traffic, sound under the
/// empty-overlay bit-identity contract.
pub(crate) fn request_signature(
    request: &Request,
    epoch: u64,
    overlay_fingerprint: u64,
) -> Option<Vec<u8>> {
    let mut sig = Sig { buf: Vec::with_capacity(96), ok: true };
    sig.u64(epoch);
    sig.u64(overlay_fingerprint);
    match &request.query {
        Query::SkyOne { target, opts } => {
            sig.u8(0);
            sig.u64(target.0 as u64);
            sig.query_options(opts);
        }
        Query::AllSky { opts } => {
            sig.u8(1);
            sig.query_options(opts);
        }
        Query::Threshold { tau, opts } => {
            sig.u8(2);
            sig.u64(tau.to_bits());
            sig.u64(opts.bonferroni_level as u64);
            sig.u64(opts.exact_component_limit as u64);
            sig.u64(opts.exact_work_limit);
            sig.u64(opts.sprt.margin.to_bits());
            sig.u64(opts.sprt.alpha.to_bits());
            sig.u64(opts.sprt.beta.to_bits());
            sig.u64(opts.sprt.max_samples);
            sig.u64(opts.sprt.seed);
            sig.u64(opts.sprt.lane_words as u64);
            sig.absent_deadline(opts.sprt.deadline_at);
            sig.sam(&opts.fallback);
            sig.opt_u64(opts.threads.map(|t| t as u64));
            sig.bool(opts.component_cache);
            sig.absent_deadline(opts.deadline_at);
            sig.opt_u64(opts.max_joints);
        }
        Query::TopK { k, opts } => {
            sig.u8(3);
            sig.u64(*k as u64);
            sig.sam(&opts.scout);
            sig.sam(&opts.refine);
            sig.u64(opts.exact_component_limit as u64);
            sig.u64(opts.overfetch as u64);
            sig.opt_u64(opts.threads.map(|t| t as u64));
            sig.bool(opts.component_cache);
        }
        Query::Sensitivity { target, opts } => {
            sig.u8(4);
            sig.opt_u64(target.map(|t| t.0 as u64));
            sig.opt_u64(opts.threads.map(|t| t as u64));
            sig.bool(opts.component_cache);
            sig.u64(opts.exact_component_limit as u64);
        }
        Query::ElicitationRank { opts } => {
            sig.u8(5);
            sig.opt_u64(opts.threads.map(|t| t as u64));
            sig.bool(opts.component_cache);
            sig.u64(opts.exact_component_limit as u64);
            sig.u64(opts.top as u64);
        }
    }
    sig.ok.then_some(sig.buf)
}

/// Little-endian field-order serialiser; `ok` drops to `false` on the
/// first non-canonicalizable field (an absolute instant).
struct Sig {
    buf: Vec<u8>,
    ok: bool,
}

impl Sig {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// An absolute instant can only be serialised by its absence.
    fn absent_deadline(&mut self, v: Option<Instant>) {
        if v.is_some() {
            self.ok = false;
        }
        self.u8(0);
    }

    fn sam(&mut self, sam: &presky_approx::sampler::SamOptions) {
        self.u64(sam.samples);
        self.u64(sam.seed);
        self.bool(sam.sort_checking);
        self.bool(sam.lazy);
        self.bool(sam.bit_parallel);
        self.u64(sam.lane_words as u64);
        self.absent_deadline(sam.deadline_at);
    }

    fn det(&mut self, det: &presky_exact::det::DetOptions) {
        self.u64(det.max_attackers as u64);
        self.opt_u64(det.deadline.map(|d| d.as_nanos() as u64));
        self.absent_deadline(det.deadline_at);
        self.opt_u64(det.max_joints);
        self.u64(det.threads as u64);
        self.bool(det.prune_zero);
        self.bool(det.prune_covered);
    }

    fn algorithm(&mut self, algo: &Algorithm) {
        match algo {
            Algorithm::Adaptive { exact_component_limit, sam } => {
                self.u8(0);
                self.u64(*exact_component_limit as u64);
                self.sam(sam);
            }
            Algorithm::Exact { det } => {
                self.u8(1);
                self.det(det);
            }
            Algorithm::Sampling(sam) => {
                self.u8(2);
                self.sam(sam);
            }
        }
    }

    fn query_options(&mut self, opts: &presky_query::prob_skyline::QueryOptions) {
        self.algorithm(&opts.algorithm);
        self.opt_u64(opts.threads.map(|t| t as u64));
        self.bool(opts.component_cache);
    }
}

/// One in-flight execution that identical submissions may attach to.
#[derive(Debug)]
pub(crate) struct Flight {
    /// The leader's budget, for the join-time coverage check.
    budget: Budget,
    /// When the leader was submitted (absolute-deadline comparisons).
    admitted_at: Instant,
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct FlightState {
    done: bool,
    /// `Some` once a successful response is published; `None` after a
    /// failed/panicked leader — followers then run solo.
    response: Option<Response>,
    followers: u64,
}

impl Flight {
    /// Block until the leader publishes; `None` means the leader failed.
    pub(crate) fn wait(&self) -> Option<Response> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !state.done {
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.response.clone()
    }
}

/// Whether the leader's budget covers a follower arriving `now`.
///
/// Work ledgers compare by [`Budget::covers`]; wall-clock allowances are
/// pinned to absolute cut-offs first, so a leader that has already burned
/// most of its deadline does not adopt a follower it can no longer serve
/// in full.
fn flight_covers(leader: &Flight, follower: &Budget, now: Instant) -> bool {
    let deadline_ok = match (leader.budget.deadline, follower.deadline) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(l), Some(f)) => leader.admitted_at + l >= now + f,
    };
    deadline_ok && leader.budget.with_deadline(None).covers(&follower.with_deadline(None))
}

/// How one submission enters the single-flight layer.
pub(crate) enum Join {
    /// First submission of this key: execute, then publish via the guard.
    Leader(LeaderGuard),
    /// Identical covered submission: wait on the flight.
    Follower(Arc<Flight>),
    /// Identical but uncovered submission: run solo, outside the flight.
    Bypass,
}

/// The engine's table of in-flight coalescible executions.
#[derive(Debug, Default)]
pub(crate) struct SingleFlight {
    flights: Mutex<HashMap<Vec<u8>, Arc<Flight>>>,
}

impl SingleFlight {
    /// Join (or open) the flight for `key`.
    pub(crate) fn join(self: &Arc<Self>, key: Vec<u8>, budget: Budget) -> Join {
        let now = Instant::now();
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(flight) = flights.get(&key) {
            if !flight_covers(flight, &budget, now) {
                return Join::Bypass;
            }
            let flight = Arc::clone(flight);
            flight.state.lock().unwrap_or_else(|e| e.into_inner()).followers += 1;
            return Join::Follower(flight);
        }
        let flight = Arc::new(Flight {
            budget,
            admitted_at: now,
            state: Mutex::new(FlightState::default()),
            cv: Condvar::new(),
        });
        flights.insert(key.clone(), Arc::clone(&flight));
        Join::Leader(LeaderGuard { registry: Arc::clone(self), key: Some(key), flight })
    }
}

/// Publishes the leader's result to its followers; publishing on drop
/// (with "no response") keeps followers from hanging if the leader's
/// execution panics.
pub(crate) struct LeaderGuard {
    registry: Arc<SingleFlight>,
    key: Option<Vec<u8>>,
    flight: Arc<Flight>,
}

impl LeaderGuard {
    /// Publish the leader's outcome and return how many followers were
    /// waiting. `None` (failure) sends followers to solo execution.
    pub(crate) fn publish(mut self, response: Option<Response>) -> u64 {
        self.publish_inner(response)
    }

    fn publish_inner(&mut self, response: Option<Response>) -> u64 {
        let Some(key) = self.key.take() else { return 0 };
        // Remove the key first: a submission arriving after this point
        // opens a fresh flight instead of joining a concluded one.
        self.registry.flights.lock().unwrap_or_else(|e| e.into_inner()).remove(&key);
        let mut state = self.flight.state.lock().unwrap_or_else(|e| e.into_inner());
        state.response = response;
        state.done = true;
        let followers = state.followers;
        drop(state);
        self.flight.cv.notify_all();
        followers
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        self.publish_inner(None);
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use presky_core::types::ObjectId;
    use presky_query::engine::{ElicitOptions, SensitivityOptions};
    use presky_query::prob_skyline::QueryOptions;
    use presky_query::threshold::ThresholdOptions;
    use presky_query::topk::TopKOptions;

    use super::*;
    use crate::request::Request;

    #[test]
    fn identical_queries_share_a_signature_and_distinct_ones_do_not() {
        let a = request_signature(&Request::all_sky(QueryOptions::default()), 0, 0).unwrap();
        let b = request_signature(&Request::all_sky(QueryOptions::default()), 0, 0).unwrap();
        assert_eq!(a, b);
        let c = request_signature(
            &Request::all_sky(QueryOptions::default().with_threads(Some(2))),
            0,
            0,
        )
        .unwrap();
        assert_ne!(a, c, "thread policy is part of the key");
        let shapes = [
            request_signature(&Request::sky_one(ObjectId(0), QueryOptions::default()), 0, 0)
                .unwrap(),
            request_signature(&Request::sky_one(ObjectId(1), QueryOptions::default()), 0, 0)
                .unwrap(),
            request_signature(&Request::threshold(0.2, ThresholdOptions::default()), 0, 0).unwrap(),
            request_signature(&Request::threshold(0.3, ThresholdOptions::default()), 0, 0).unwrap(),
            request_signature(&Request::top_k(2, TopKOptions::default()), 0, 0).unwrap(),
            request_signature(&Request::sensitivity(None, SensitivityOptions::default()), 0, 0)
                .unwrap(),
            request_signature(
                &Request::sensitivity(Some(ObjectId(0)), SensitivityOptions::default()),
                0,
                0,
            )
            .unwrap(),
            request_signature(&Request::elicitation_rank(ElicitOptions::default()), 0, 0).unwrap(),
            request_signature(
                &Request::elicitation_rank(ElicitOptions::default().with_top(4)),
                0,
                0,
            )
            .unwrap(),
            a,
        ];
        for (i, x) in shapes.iter().enumerate() {
            for y in &shapes[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn the_pinned_epoch_is_part_of_the_key() {
        let req = Request::all_sky(QueryOptions::default());
        let e0 = request_signature(&req, 0, 0).unwrap();
        let e1 = request_signature(&req, 1, 0).unwrap();
        assert_ne!(e0, e1, "a write between leader start and follower join must split the flight");
        assert_eq!(e0, request_signature(&req, 0, 0).unwrap());
    }

    #[test]
    fn the_overlay_fingerprint_is_part_of_the_key() {
        let req = Request::all_sky(QueryOptions::default());
        let base = request_signature(&req, 0, 0).unwrap();
        let tenant_a = request_signature(&req, 0, 0xdead_beef).unwrap();
        let tenant_b = request_signature(&req, 0, 0xfeed_f00d).unwrap();
        assert_ne!(base, tenant_a, "an overlay must not share the base flight");
        assert_ne!(tenant_a, tenant_b, "distinct overlays must not share a flight");
        // Identical overlay content (same fingerprint) shares the flight,
        // whoever submits it; an empty overlay (fp 0) shares the base one.
        assert_eq!(tenant_a, request_signature(&req, 0, 0xdead_beef).unwrap());
        assert_eq!(
            base,
            request_signature(&req.clone().with_tenant(crate::tenant::TenantId(4)), 0, 0).unwrap()
        );
    }

    #[test]
    fn budgets_do_not_change_the_key() {
        let plain = request_signature(&Request::all_sky(QueryOptions::default()), 3, 0).unwrap();
        let budgeted = request_signature(
            &Request::all_sky(QueryOptions::default())
                .with_budget(Budget::default().with_max_joints(Some(5))),
            3,
            0,
        )
        .unwrap();
        assert_eq!(plain, budgeted, "coverage is checked at join time, not in the key");
    }

    #[test]
    fn absolute_deadlines_are_not_coalescible() {
        let opts = QueryOptions::default().with_algorithm(Algorithm::Sampling(
            presky_approx::sampler::SamOptions::default()
                .with_deadline_at(Some(Instant::now() + Duration::from_secs(1))),
        ));
        assert!(request_signature(&Request::all_sky(opts), 0, 0).is_none());
        let topts = ThresholdOptions::default()
            .with_deadline_at(Some(Instant::now() + Duration::from_secs(1)));
        assert!(request_signature(&Request::threshold(0.2, topts), 0, 0).is_none());
    }

    #[test]
    fn leader_follower_handshake_delivers_the_response() {
        let registry = Arc::new(SingleFlight::default());
        let key = vec![1, 2, 3];
        let Join::Leader(guard) = registry.join(key.clone(), Budget::default()) else {
            panic!("first join must lead");
        };
        let Join::Follower(flight) = registry.join(key.clone(), Budget::default()) else {
            panic!("second join must follow");
        };
        let response = Response {
            outcome: crate::request::Outcome::Exact(crate::request::Value::TopK(vec![])),
            stats: Default::default(),
            elapsed: Duration::ZERO,
            epoch: 0,
        };
        let waiter = std::thread::spawn(move || flight.wait());
        assert_eq!(guard.publish(Some(response.clone())), 1);
        assert_eq!(waiter.join().unwrap(), Some(response));
        // The flight is gone: the next join leads again.
        assert!(matches!(registry.join(key, Budget::default()), Join::Leader(_)));
    }

    #[test]
    fn dropped_leader_unblocks_followers_with_no_response() {
        let registry = Arc::new(SingleFlight::default());
        let Join::Leader(guard) = registry.join(vec![9], Budget::default()) else {
            panic!("first join must lead");
        };
        let Join::Follower(flight) = registry.join(vec![9], Budget::default()) else {
            panic!("second join must follow");
        };
        drop(guard); // leader panicked / errored without publishing
        assert_eq!(flight.wait(), None);
    }

    #[test]
    fn uncovered_budgets_bypass_the_flight() {
        let registry = Arc::new(SingleFlight::default());
        let tight = Budget::default().with_max_joints(Some(10));
        let loose = Budget::default().with_max_joints(Some(100));
        let Join::Leader(_guard) = registry.join(vec![7], tight) else {
            panic!("first join must lead");
        };
        assert!(matches!(registry.join(vec![7], loose), Join::Bypass));
        assert!(matches!(registry.join(vec![7], tight), Join::Follower(_)));
    }

    #[test]
    fn spent_leader_deadline_is_not_inherited() {
        let registry = Arc::new(SingleFlight::default());
        let leader = Budget::default().with_deadline(Some(Duration::from_millis(20)));
        let Join::Leader(_guard) = registry.join(vec![4], leader) else {
            panic!("first join must lead");
        };
        std::thread::sleep(Duration::from_millis(25));
        // The leader's absolute cut-off has passed; a follower with any
        // fresh allowance would be served a response truncated earlier
        // than its own budget permits, so it must bypass.
        let follower = Budget::default().with_deadline(Some(Duration::from_millis(20)));
        assert!(matches!(registry.join(vec![4], follower), Join::Bypass));
    }
}
