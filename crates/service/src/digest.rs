//! Canonical response digests: one FNV-1a fold over typed [`Outcome`]s.
//!
//! Three bench drivers used to re-derive their own all-sky digest; this
//! module is the single definition they (and the `skyprob elicit` smoke
//! check) share. The contract is the one the drivers rely on: **equal
//! digests ⇔ slot-for-slot bit-identical values**. Floats are folded by
//! their IEEE bit patterns, absent slots by a presence byte, and every
//! value variant by a distinct tag, so a truncated slot, a `-0.0`/`+0.0`
//! flip or a shape change can never collide with a clean answer.

use presky_exact::snapshot::Fnv;

use crate::request::{Outcome, Value};

/// FNV-1a digest of a sequence of typed outcomes.
///
/// Each outcome contributes a conclusion tag (exact / estimate /
/// deadline-exceeded plus the truncation count) followed by its value in
/// a canonical little-endian layout. Batch shapes keep the historical
/// presence-byte + value-bits encoding per slot.
pub fn digest(outcomes: &[Outcome]) -> u64 {
    let mut h = Fnv::new();
    for outcome in outcomes {
        match outcome {
            Outcome::Exact(v) => {
                h.eat(&[0]);
                eat_value(&mut h, v);
            }
            Outcome::Estimate(v) => {
                h.eat(&[1]);
                eat_value(&mut h, v);
            }
            Outcome::DeadlineExceeded { partial, truncated } => {
                h.eat(&[2]);
                h.eat(&truncated.to_le_bytes());
                eat_value(&mut h, partial);
            }
        }
    }
    h.finish()
}

fn eat_value(h: &mut Fnv, value: &Value) {
    match value {
        Value::Sky(slot) => {
            h.eat(&[0]);
            match slot {
                Some(r) => {
                    h.eat(&[1]);
                    h.eat(&r.sky.to_bits().to_le_bytes());
                }
                None => h.eat(&[0]),
            }
        }
        Value::AllSky(slots) => {
            h.eat(&[1]);
            for slot in slots {
                match slot {
                    Some(r) => {
                        h.eat(&[1]);
                        h.eat(&r.sky.to_bits().to_le_bytes());
                    }
                    None => h.eat(&[0]),
                }
            }
        }
        Value::Threshold(slots) => {
            h.eat(&[2]);
            for slot in slots {
                match slot {
                    Some(a) => {
                        h.eat(&[1]);
                        h.eat(&[u8::from(a.member)]);
                    }
                    None => h.eat(&[0]),
                }
            }
        }
        Value::TopK(ranking) => {
            h.eat(&[3]);
            for r in ranking {
                h.eat(&(r.object.0 as u64).to_le_bytes());
                h.eat(&r.sky.to_bits().to_le_bytes());
            }
        }
        Value::Sensitivity(slots) => {
            h.eat(&[4]);
            for slot in slots {
                match slot {
                    Some(t) => {
                        h.eat(&[1]);
                        h.eat(&t.sky.to_bits().to_le_bytes());
                        for s in &t.sensitivities {
                            h.eat(&(s.dim.0 as u64).to_le_bytes());
                            h.eat(&(s.a.0 as u64).to_le_bytes());
                            h.eat(&(s.b.0 as u64).to_le_bytes());
                            h.eat(&s.dsky.to_bits().to_le_bytes());
                        }
                    }
                    None => h.eat(&[0]),
                }
            }
        }
        Value::ElicitationRank(candidates) => {
            h.eat(&[5]);
            for c in candidates {
                h.eat(&(c.dim.0 as u64).to_le_bytes());
                h.eat(&(c.lo.0 as u64).to_le_bytes());
                h.eat(&(c.hi.0 as u64).to_le_bytes());
                h.eat(&c.voi.to_bits().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use presky_core::types::ObjectId;
    use presky_query::prob_skyline::SkyResult;

    use super::*;

    fn sky(bits: u64) -> SkyResult {
        SkyResult { object: ObjectId(0), sky: f64::from_bits(bits), exact: true }
    }

    #[test]
    fn digest_separates_presence_truncation_and_bits() {
        let full = Outcome::Exact(Value::AllSky(vec![Some(sky(0x3fe0_0000_0000_0000))]));
        let same = Outcome::Exact(Value::AllSky(vec![Some(sky(0x3fe0_0000_0000_0000))]));
        assert_eq!(digest(std::slice::from_ref(&full)), digest(&[same]));

        let hole = Outcome::DeadlineExceeded { partial: Value::AllSky(vec![None]), truncated: 1 };
        assert_ne!(digest(std::slice::from_ref(&full)), digest(&[hole]));

        let flipped = Outcome::Exact(Value::AllSky(vec![Some(sky(0xbfe0_0000_0000_0000))]));
        assert_ne!(digest(std::slice::from_ref(&full)), digest(&[flipped]), "sign bit must matter");

        let as_sky = Outcome::Exact(Value::Sky(Some(sky(0x3fe0_0000_0000_0000))));
        assert_ne!(digest(&[full]), digest(&[as_sky]), "shape tag must matter");
    }

    #[test]
    fn digest_is_order_sensitive_over_the_sequence() {
        let a = Outcome::Exact(Value::Sky(Some(sky(1))));
        let b = Outcome::Exact(Value::Sky(Some(sky(2))));
        assert_ne!(digest(&[a.clone(), b.clone()]), digest(&[b, a]));
    }
}
