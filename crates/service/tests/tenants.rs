//! Multi-tenant serving: per-user overlays over one shared base model.
//!
//! Two contracts pin the whole feature:
//!
//! * **bit-identity** — a registered tenant with an *empty* overlay
//!   receives byte-identical responses to untenanted requests, at any
//!   shard count, with namespacing on or off; and a tenant with a
//!   non-empty overlay receives exactly what a dedicated engine built on
//!   the overlaid model would compute;
//! * **sharing** — components untouched by a tenant's overlay hit the
//!   same cross-user cache entries the base workload populates, and the
//!   namespacing ablation (which forbids all sharing) changes hit
//!   counts, never values.

use presky_core::preference::{OverlayPreferences, SeededPreferences};
use presky_core::types::{DimId, ObjectId, ValueId};
use presky_datagen::car::car_projected;
use presky_service::prelude::*;
use presky_service::ServiceError;

fn car_table() -> presky_core::table::Table {
    car_projected(4).unwrap()
}

fn prefs() -> SeededPreferences {
    SeededPreferences::complementary(7)
}

/// A small overlay with interior probabilities (always simplex-valid
/// whatever the base holds).
fn overlay_pairs() -> Vec<(DimId, ValueId, ValueId, f64, f64)> {
    vec![
        (DimId(0), ValueId(0), ValueId(1), 0.85, 0.10),
        (DimId(1), ValueId(0), ValueId(2), 0.05, 0.90),
    ]
}

fn all_sky_bits(r: &Response) -> Vec<u64> {
    r.outcome.value().as_all_sky().unwrap().iter().map(|x| x.unwrap().sky.to_bits()).collect()
}

#[test]
fn empty_overlay_tenant_is_byte_identical_to_untenanted() {
    for namespacing in [false, true] {
        let opts = EngineOptions::default().with_tenant_namespacing(namespacing);
        let engine = Engine::new(car_table(), prefs(), opts).unwrap();
        let handle = engine.register_tenant(TenantId(42), &[]).unwrap();
        assert_eq!(handle.fingerprint, 0, "empty overlay hashes to the untenanted key");
        assert_eq!(handle.pairs, 0);
        assert_eq!(engine.n_tenants(), 1);

        let base = engine.run(Request::all_sky(QueryOptions::default())).unwrap();
        let tenanted = engine
            .run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(42)))
            .unwrap();
        assert_eq!(all_sky_bits(&tenanted), all_sky_bits(&base), "namespacing {namespacing}");

        let t = engine
            .run(Request::sky_one(ObjectId(3), QueryOptions::default()).with_tenant(TenantId(42)))
            .unwrap();
        let b = engine.run(Request::sky_one(ObjectId(3), QueryOptions::default())).unwrap();
        assert_eq!(
            t.outcome.value().as_sky().unwrap().sky.to_bits(),
            b.outcome.value().as_sky().unwrap().sky.to_bits(),
        );
    }
}

#[test]
fn overlaid_tenant_matches_an_engine_built_on_the_overlaid_model() {
    let engine = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let handle = engine.register_tenant(TenantId(1), &overlay_pairs()).unwrap();
    assert_ne!(handle.fingerprint, 0);
    assert_eq!(handle.pairs, 2);

    // The ground truth: a dedicated engine whose *base* model carries the
    // tenant's pairs. The overlay path must reproduce it bit for bit.
    let mut truth_model = OverlayPreferences::new(prefs());
    for (dim, a, b, f, r) in overlay_pairs() {
        truth_model = truth_model.with_pair(dim, a, b, f, r).unwrap();
    }
    let truth = Engine::new(car_table(), truth_model, EngineOptions::default()).unwrap();

    let got =
        engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1))).unwrap();
    let want = truth.run(Request::all_sky(QueryOptions::default())).unwrap();
    assert_eq!(all_sky_bits(&got), all_sky_bits(&want));
    // The overlay genuinely changes the answer (the base run differs).
    let base = engine.run(Request::all_sky(QueryOptions::default())).unwrap();
    assert_ne!(all_sky_bits(&got), all_sky_bits(&base));
}

#[test]
fn unknown_tenants_are_refused_and_counted_failed() {
    let engine = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let err =
        engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(9))).unwrap_err();
    assert!(matches!(err, ServiceError::UnknownTenant { tenant: 9 }));
    let m = engine.metrics();
    assert_eq!((m.requests, m.failed, m.admitted), (1, 1, 0));
    assert!(m.tenants.is_empty(), "unregistered tenants never get a counter row");

    let err = engine
        .set_tenant_preference(TenantId(9), DimId(0), ValueId(0), ValueId(1), 0.5, 0.4)
        .unwrap_err();
    assert!(matches!(err, ServiceError::UnknownTenant { tenant: 9 }));
}

#[test]
fn overlay_updates_are_copy_on_write_and_move_the_fingerprint() {
    let engine = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let first = engine.register_tenant(TenantId(5), &overlay_pairs()).unwrap();
    let second = engine
        .set_tenant_preference(TenantId(5), DimId(2), ValueId(0), ValueId(1), 0.6, 0.3)
        .unwrap();
    assert_eq!(second.pairs, 3);
    assert_ne!(second.fingerprint, first.fingerprint);
    // Re-registering the original pairs restores the original content
    // fingerprint: the handle addresses overlay *content*, not history.
    let third = engine.register_tenant(TenantId(5), &overlay_pairs()).unwrap();
    assert_eq!(third.fingerprint, first.fingerprint);
    // Invalid updates are refused and leave the registry untouched.
    assert!(engine
        .set_tenant_preference(TenantId(5), DimId(0), ValueId(1), ValueId(1), 0.5, 0.4)
        .is_err());
    assert_eq!(engine.register_tenant(TenantId(5), &overlay_pairs()).unwrap().pairs, 2);
}

#[test]
fn namespacing_ablation_changes_hit_counts_never_values() {
    let run_workload = |namespacing: bool| {
        let opts = EngineOptions::default().with_tenant_namespacing(namespacing);
        let engine = Engine::new(car_table(), prefs(), opts).unwrap();
        // Tenants whose overlays touch values absent from the dataset's
        // coin signatures share *every* component with the base workload.
        let far = vec![(DimId(0), ValueId(900), ValueId(901), 0.2, 0.7)];
        for t in 0..4u64 {
            engine.register_tenant(TenantId(t), &far).unwrap();
        }
        // Warm the shared cache untenanted, then serve each tenant.
        engine.run(Request::all_sky(QueryOptions::default())).unwrap();
        let mut answers = Vec::new();
        for t in 0..4u64 {
            let r = engine
                .run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(t)))
                .unwrap();
            answers.push(all_sky_bits(&r));
        }
        (answers, engine.metrics())
    };
    let (shared_answers, shared) = run_workload(false);
    let (namespaced_answers, namespaced) = run_workload(true);

    assert_eq!(shared_answers, namespaced_answers, "the ablation may never move a value");
    assert!(shared.cross_user_hits > 0, "disjoint overlays must share the base entries");
    assert!(
        shared.cross_user_hit_rate() > 0.9,
        "expected near-total sharing, got {}",
        shared.cross_user_hit_rate()
    );
    assert_eq!(namespaced.cross_user_hits, 0, "namespaced keys can never hit base entries");
    assert_eq!(shared.tenants.len(), 4);
    for row in &shared.tenants {
        assert_eq!(row.requests, 1);
        assert!(row.cache_probes > 0);
    }
}

#[test]
fn sharded_empty_overlay_stays_byte_identical_at_every_shard_count() {
    let single = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let want = all_sky_bits(&single.run(Request::all_sky(QueryOptions::default())).unwrap());
    for n_shards in [1usize, 2, 4] {
        let fleet =
            ShardedEngine::new(car_table(), prefs(), EngineOptions::default(), n_shards).unwrap();
        fleet.register_tenant(TenantId(11), &[]).unwrap();
        assert_eq!(fleet.n_tenants(), 1);
        let got =
            fleet.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(11))).unwrap();
        assert_eq!(all_sky_bits(&got), want, "{n_shards} shards");
    }
}

#[test]
fn sharded_overlays_resolve_identically_on_every_shard() {
    // The registry is one shared Arc: registering through the fleet handle
    // must apply the overlay to every slice of a fanned-out request, so
    // the merged answer matches the single-engine tenant answer bitwise.
    let single = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    single.register_tenant(TenantId(2), &overlay_pairs()).unwrap();
    let want = all_sky_bits(
        &single.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(2))).unwrap(),
    );
    for n_shards in [2usize, 4] {
        let fleet =
            ShardedEngine::new(car_table(), prefs(), EngineOptions::default(), n_shards).unwrap();
        fleet.register_tenant(TenantId(2), &overlay_pairs()).unwrap();
        let got =
            fleet.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(2))).unwrap();
        assert_eq!(all_sky_bits(&got), want, "{n_shards} shards");
        // Unknown tenants are refused on the fan-out path too.
        let err = fleet
            .run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(77)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownTenant { tenant: 77 }));
    }
}

#[test]
fn warmstart_accepts_the_same_registry_and_refuses_a_drifted_one() {
    let dir = std::env::temp_dir().join("presky-tenant-warmstart");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tenants.snap");

    let engine = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    engine.register_tenant(TenantId(1), &overlay_pairs()).unwrap();
    engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1))).unwrap();
    engine.save_cache_snapshot(&path).unwrap();

    // Accept arm: same registry content (re-registered from scratch on a
    // fresh engine) revalidates and the warm cache serves immediately.
    let mut warm = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    warm.register_tenant(TenantId(1), &overlay_pairs()).unwrap();
    warm.load_cache_snapshot(&path).unwrap();
    let m0 = warm.metrics();
    assert!(m0.cache_entries > 0, "snapshot entries must survive the round-trip");
    let warm_resp =
        warm.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1))).unwrap();
    assert!(warm.metrics().stats.cache_hits > 0, "warm start must hit immediately");
    let cold =
        engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1))).unwrap();
    assert_eq!(all_sky_bits(&warm_resp), all_sky_bits(&cold));

    // Refuse arm: a drifted registry (different overlay content) is a
    // fingerprint mismatch naming the tenant registry.
    let mut drifted = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    drifted.register_tenant(TenantId(1), &overlay_pairs()[..1]).unwrap();
    let err = drifted.load_cache_snapshot(&path).unwrap_err();
    match err {
        ServiceError::Warmstart { detail } => {
            assert!(detail.contains("tenant registry"), "detail must name the side: {detail}")
        }
        other => panic!("expected a warmstart refusal, got {other:?}"),
    }
    // An engine with *no* tenants is refused the same way.
    let mut untenanted = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    assert!(untenanted.load_cache_snapshot(&path).is_err());
}

#[test]
fn identical_tenant_requests_coalesce_and_distinct_overlays_do_not() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    let engine = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    engine.register_tenant(TenantId(1), &overlay_pairs()).unwrap();
    engine.register_tenant(TenantId(2), &overlay_pairs()[..1]).unwrap();

    // Round 1: many submissions of one tenant's identical request — some
    // must coalesce (retry until the race produces at least one follower).
    let mut coalesced_seen = 0;
    for _ in 0..20 {
        let barrier = Barrier::new(8);
        let errors = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let req = Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1));
                    if engine.run(req).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::Relaxed), 0);
        coalesced_seen = engine.metrics().coalesced;
        if coalesced_seen > 0 {
            break;
        }
    }
    assert!(coalesced_seen > 0, "identical same-tenant submissions should share a flight");
    let row = engine
        .metrics()
        .tenants
        .iter()
        .find(|r| r.tenant == 1)
        .copied()
        .expect("tenant 1 has a counter row");
    assert_eq!(row.coalesced, coalesced_seen, "coalesced followers attribute to their tenant");

    // Round 2: two tenants with *different* overlays submitting the same
    // query never share a flight — whatever the interleaving, both get
    // their own overlay's answer.
    let r1 =
        engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(1))).unwrap();
    let r2 =
        engine.run(Request::all_sky(QueryOptions::default()).with_tenant(TenantId(2))).unwrap();
    assert_ne!(all_sky_bits(&r1), all_sky_bits(&r2), "distinct overlays, distinct answers");
}
