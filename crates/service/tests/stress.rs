//! Service-layer stress tests: one resident [`Engine`], many threads, a
//! mixed workload — and the two contracts that make the service usable:
//!
//! 1. **bit-identity** — concurrent answers are bit-for-bit the answers
//!    the same requests get serially (the cache and the metrics are the
//!    only shared mutable state, and neither may influence values);
//! 2. **budget honesty** — a deadline-bounded request terminates near its
//!    budget and returns only slots identical to the unbudgeted run.

use std::time::{Duration, Instant};

use presky_core::preference::SeededPreferences;
use presky_datagen::car::car_projected;
use presky_service::prelude::*;
use presky_service::Outcome;

fn car_engine(opts: EngineOptions) -> Engine<SeededPreferences> {
    let table = car_projected(4).unwrap();
    Engine::new(table, SeededPreferences::complementary(7), opts).unwrap()
}

/// The mixed workload: every request shape, inner parallelism pinned to
/// one thread so the outer stress threads provide all the concurrency.
fn workload(n: usize) -> Vec<Request> {
    use presky_core::types::ObjectId;
    vec![
        Request::sky_one(ObjectId(0), QueryOptions::default().with_threads(Some(1))),
        Request::sky_one(ObjectId((n / 2) as u32), QueryOptions::default().with_threads(Some(1))),
        Request::all_sky(QueryOptions::default().with_threads(Some(1))),
        Request::threshold(0.05, ThresholdOptions::default().with_threads(Some(1))),
        Request::top_k(5, TopKOptions::default().with_threads(Some(1))),
    ]
}

#[test]
fn eight_thread_mixed_workload_is_bit_identical_to_serial() {
    const THREADS: usize = 8;
    let engine = car_engine(EngineOptions::default());
    let requests = workload(engine.n_objects());

    // Serial reference pass (also warms the component cache).
    let reference: Vec<Value> =
        requests.iter().map(|r| engine.run(r.clone()).unwrap().outcome.value().clone()).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let requests = &requests;
                let reference = &reference;
                scope.spawn(move || {
                    // Each thread walks the workload from a different
                    // offset so distinct shapes overlap in time.
                    for i in 0..requests.len() {
                        let idx = (i + t) % requests.len();
                        let resp = engine.run(requests[idx].clone()).unwrap();
                        assert!(resp.outcome.complete(), "unlimited budget must not truncate");
                        assert_eq!(
                            *resp.outcome.value(),
                            reference[idx],
                            "thread {t} diverged from the serial answer on request {idx}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let m = engine.metrics();
    let total = (requests.len() * (THREADS + 1)) as u64;
    // Identical concurrent submissions may share one execution under
    // single-flight coalescing; every submission is still answered and
    // counted exactly once.
    assert_eq!(m.requests, total);
    assert_eq!(m.completed + m.coalesced, total);
    assert_eq!(m.admitted, m.completed);
    assert_eq!(m.failed, 0);
    assert_eq!(m.deadline_misses, 0);
    assert_eq!(m.shed(), 0);
    assert_eq!(m.in_flight, 0);
    assert!(m.cache_hit_rate() > 0.0, "cross-request cache must be warm on the car workload");
    assert!(m.cache_entries > 0);
}

#[test]
fn deadline_bounded_requests_terminate_in_budget_and_never_lie() {
    let engine = car_engine(EngineOptions::default());
    let full = engine.run(Request::all_sky(QueryOptions::default().with_threads(Some(1)))).unwrap();
    let want = full.outcome.value().as_all_sky().unwrap().to_vec();

    // From "already expired" up to "tight but real": every budget must
    // terminate promptly and only ever withhold slots, never alter them.
    for micros in [0u64, 50, 500, 5_000] {
        let deadline = Duration::from_micros(micros);
        let started = Instant::now();
        let resp = engine
            .run(
                Request::all_sky(QueryOptions::default().with_threads(Some(1)))
                    .with_budget(Budget::default().with_deadline(Some(deadline))),
            )
            .unwrap();
        // Budget + one chunk of slack (the DFS checks every 8192 joints,
        // the samplers every 64-world block); a generous absolute bound
        // keeps this robust on loaded CI machines.
        assert!(
            started.elapsed() < deadline + Duration::from_secs(5),
            "a {micros}µs deadline must terminate the request promptly"
        );
        let got = resp.outcome.value().as_all_sky().unwrap();
        assert_eq!(got.len(), want.len());
        let mut truncated = 0u64;
        for (g, w) in got.iter().zip(&want) {
            match g {
                Some(g) => {
                    let w = w.expect("unbudgeted run completed every slot");
                    assert_eq!(g.sky.to_bits(), w.sky.to_bits(), "budget altered a value");
                    assert_eq!(g.exact, w.exact);
                }
                None => truncated += 1,
            }
        }
        match resp.outcome {
            Outcome::DeadlineExceeded { truncated: t, .. } => {
                assert_eq!(t, truncated, "truncation count must match the missing slots");
                assert!(t > 0);
            }
            _ => assert_eq!(truncated, 0, "complete outcomes must have every slot present"),
        }
    }
    let m = engine.metrics();
    assert_eq!(m.completed, m.admitted);
    assert_eq!(m.in_flight, 0);
}

#[test]
fn overload_shedding_is_accounted_exactly_under_concurrency() {
    const THREADS: usize = 8;
    let engine = car_engine(EngineOptions::default().with_max_in_flight(2));
    let requests = workload(engine.n_objects());

    let (ok, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let requests = &requests;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for i in 0..requests.len() {
                        let idx = (i + t) % requests.len();
                        match engine.run(requests[idx].clone()) {
                            Ok(_) => ok += 1,
                            Err(ServiceError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1))
    });

    let m = engine.metrics();
    let total = (requests.len() * THREADS) as u64;
    assert_eq!(ok + shed, total);
    assert_eq!(m.requests, total);
    // A coalesced follower is answered without occupying an in-flight
    // slot, so successes split into executed-and-completed vs coalesced.
    assert_eq!(m.completed + m.coalesced, ok);
    assert_eq!(m.admitted, m.completed);
    assert_eq!(m.shed_overload, shed);
    assert_eq!(m.failed, 0);
    assert_eq!(m.in_flight, 0);
}

#[test]
fn invalid_requests_fail_cleanly_without_wedging_the_engine() {
    let engine = car_engine(EngineOptions::default());
    assert!(matches!(
        engine.run(Request::threshold(-0.5, ThresholdOptions::default())),
        Err(ServiceError::Query(_))
    ));
    assert!(matches!(
        engine.run(Request::top_k(0, TopKOptions::default())),
        Err(ServiceError::Query(_))
    ));
    let resp = engine
        .run(Request::threshold(0.05, ThresholdOptions::default().with_threads(Some(1))))
        .unwrap();
    assert!(resp.outcome.complete());
    assert_eq!(engine.metrics().in_flight, 0);
}
