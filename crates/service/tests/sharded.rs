//! Sharded all-sky fan-out vs the single engine: the shard count is a
//! deployment knob, not a semantic one. At every tested shard count the
//! merged answer must be bit-for-bit the single-engine answer — same
//! slot values, same logical work — and a deadline-truncated run may
//! only withhold slots, never alter the ones it returns.

use std::time::Duration;

use presky_core::preference::SeededPreferences;
use presky_datagen::car::car_projected;
use presky_service::prelude::*;
use presky_service::Outcome;

fn car_table() -> presky_core::table::Table {
    car_projected(4).unwrap()
}

fn prefs() -> SeededPreferences {
    SeededPreferences::complementary(7)
}

#[test]
fn sharded_all_sky_is_bit_identical_to_single_engine() {
    let single = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let reference = single.run(Request::all_sky(QueryOptions::default())).unwrap();
    let want = reference.outcome.value().as_all_sky().unwrap().to_vec();
    assert!(reference.outcome.complete());
    let want_joints = reference.stats.joints_computed;

    for n_shards in [1usize, 2, 4] {
        let sharded =
            ShardedEngine::new(car_table(), prefs(), EngineOptions::default(), n_shards).unwrap();
        assert_eq!(sharded.n_shards(), n_shards);
        let resp = sharded.run(Request::all_sky(QueryOptions::default())).unwrap();
        assert!(resp.outcome.complete(), "{n_shards} shards: unlimited budget must not truncate");
        let got = resp.outcome.value().as_all_sky().unwrap();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            let g = g.as_ref().expect("complete run fills every slot");
            let w = w.as_ref().expect("complete run fills every slot");
            assert_eq!(
                g.sky.to_bits(),
                w.sky.to_bits(),
                "{n_shards} shards: slot {i} diverged from the single-engine answer"
            );
            assert_eq!(g.exact, w.exact, "{n_shards} shards: slot {i} exactness flag diverged");
        }
        // Logical work is deterministic too: cache hits replay the
        // component's joint count, so the merged total matches the
        // single-engine total at any shard count.
        assert_eq!(
            resp.stats.joints_computed, want_joints,
            "{n_shards} shards: merged joint count diverged"
        );
    }
}

#[test]
fn deadline_truncated_fan_out_only_withholds_slots() {
    let single = Engine::new(car_table(), prefs(), EngineOptions::default()).unwrap();
    let want = single
        .run(Request::all_sky(QueryOptions::default()))
        .unwrap()
        .outcome
        .value()
        .as_all_sky()
        .unwrap()
        .to_vec();

    for n_shards in [1usize, 2, 4] {
        let sharded =
            ShardedEngine::new(car_table(), prefs(), EngineOptions::default(), n_shards).unwrap();
        // An already-expired deadline: every shard trips its budget at the
        // first chunk boundary, so every slot is withheld deterministically.
        let resp = sharded
            .run(
                Request::all_sky(QueryOptions::default())
                    .with_budget(Budget::default().with_deadline(Some(Duration::ZERO))),
            )
            .unwrap();
        let got = resp.outcome.value().as_all_sky().unwrap();
        assert_eq!(got.len(), want.len());
        let mut withheld = 0u64;
        for (g, w) in got.iter().zip(&want) {
            match g {
                Some(g) => {
                    let w = w.as_ref().expect("unbudgeted run completed every slot");
                    assert_eq!(g.sky.to_bits(), w.sky.to_bits(), "budget altered a value");
                }
                None => withheld += 1,
            }
        }
        match resp.outcome {
            Outcome::DeadlineExceeded { truncated, .. } => {
                assert_eq!(truncated, withheld, "{n_shards} shards: truncation count must match");
                assert!(truncated > 0, "{n_shards} shards: an expired deadline must truncate");
            }
            ref o => {
                assert_eq!(withheld, 0, "{n_shards} shards: complete outcome {o:?} withheld slots")
            }
        }
        let m = sharded.metrics();
        assert_eq!(m.in_flight, 0);
        assert_eq!(m.failed, 0);
    }
}

#[test]
fn sharded_metrics_fold_across_every_shard() {
    use presky_core::types::ObjectId;
    let sharded = ShardedEngine::new(car_table(), prefs(), EngineOptions::default(), 4).unwrap();
    let n = sharded.n_objects();
    // One fan-out (admits once per shard) plus one routed point query on
    // the last shard's range.
    sharded.run(Request::all_sky(QueryOptions::default())).unwrap();
    sharded.run(Request::sky_one(ObjectId((n - 1) as u32), QueryOptions::default())).unwrap();
    let m = sharded.metrics();
    assert_eq!(m.admitted, 4 + 1);
    assert_eq!(m.completed, m.admitted);
    assert_eq!(m.shed(), 0);
    assert_eq!(m.in_flight, 0);
}
