//! Live-dataset integration tests: the contracts that make a *mutable*
//! resident engine safe to run.
//!
//! 1. **snapshot isolation** — a response is bit-identical to a serial
//!    run on the epoch it pinned at admission, whatever writes commit
//!    meanwhile (property-tested over random write interleavings);
//! 2. **epoch-keyed coalescing** — an identical query submitted after a
//!    write must not join a leader still executing on the old epoch;
//! 3. **incremental invalidation** — a preference edit evicts exactly the
//!    signature-touched cache slice (accounted entry-for-entry against
//!    the public snapshot format) and the next all-sky pass stays warm;
//! 4. **epoch-aware warmstart** — a refused cache snapshot names which
//!    fingerprint field drifted (dataset vs preference grid);
//! 5. **conservation under a storm** — an 8-thread mixed read/write
//!    workload accounts every submission and commit exactly once, and
//!    the final state is bit-identical to a fresh engine rebuilt from
//!    the final snapshot.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use presky_core::preference::{PreferenceModel, SeededPreferences};
use presky_core::table::Table;
use presky_core::types::{DimId, ObjectId, ValueId};
use presky_datagen::car::car_projected;
use presky_exact::signature::signature_coins;
use presky_exact::snapshot::load_from_path;
use presky_service::prelude::*;

fn all_sky() -> Request {
    Request::all_sky(QueryOptions::default().with_threads(Some(1)))
}

/// The serial all-sky value of a fresh engine rebuilt from `engine`'s
/// current snapshot — the "cold restart on the final state" reference.
fn rebuilt_value<M: PreferenceModel + Clone + Sync>(engine: &Engine<M>) -> Value {
    let view = engine.snapshot();
    let fresh = Engine::new(
        view.table().as_ref().clone(),
        view.prefs().as_ref().clone(),
        EngineOptions::default(),
    )
    .unwrap();
    fresh.run(all_sky()).unwrap().outcome.value().clone()
}

// ---------------------------------------------------------------------
// 2. epoch-keyed coalescing

/// A preference model that parks the next thread to consult it (one-shot)
/// until released — the deterministic way to hold a leader mid-execution
/// while a write commits underneath it.
#[derive(Clone)]
struct GatedPrefs {
    inner: SeededPreferences,
    armed: Arc<AtomicBool>,
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl PreferenceModel for GatedPrefs {
    fn pr_strict(&self, dim: DimId, a: ValueId, b: ValueId) -> f64 {
        if self.armed.swap(false, Ordering::SeqCst) {
            self.entered.store(true, Ordering::SeqCst);
            while !self.release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }
        self.inner.pr_strict(dim, a, b)
    }
}

/// The regression this PR's coalescing key exists for: leader starts on
/// epoch 0, a write commits, then an *identical* submission arrives. The
/// follower pins epoch 1, so its key differs and it must run solo — it
/// completes (on the new state) while the leader is still parked, and
/// both answer bit-identically for their own pinned epochs.
#[test]
fn a_write_between_leader_start_and_follower_join_splits_the_flight() {
    let table = car_projected(4).unwrap();
    let inner = SeededPreferences::complementary(7);
    let armed = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let gated = GatedPrefs {
        inner,
        armed: Arc::clone(&armed),
        entered: Arc::clone(&entered),
        release: Arc::clone(&release),
    };
    let engine = Engine::new(table.clone(), gated, EngineOptions::default()).unwrap();

    // Epoch-0 reference from a throwaway engine over the same instance.
    let ref0 = Engine::new(table, inner, EngineOptions::default())
        .unwrap()
        .run(all_sky())
        .unwrap()
        .outcome
        .value()
        .clone();

    armed.store(true, Ordering::SeqCst);
    let (leader, follower) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| engine.run(all_sky()).unwrap());
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // The leader is parked mid-execution on epoch 0: commit a write.
        let receipt = engine.set_preference(DimId(0), ValueId(0), ValueId(1), 0.4, 0.4).unwrap();
        assert_eq!(receipt.epoch, 1);
        // An identical submission now pins epoch 1 and completes even
        // though the "same" query is still in flight on epoch 0.
        let follower = engine.run(all_sky()).unwrap();
        release.store(true, Ordering::SeqCst);
        (leader.join().unwrap(), follower)
    });

    assert_eq!(leader.epoch, 0);
    assert_eq!(follower.epoch, 1);
    assert_eq!(*leader.outcome.value(), ref0, "the leader answers from its pinned epoch");
    assert_eq!(
        *follower.outcome.value(),
        rebuilt_value(&engine),
        "the follower answers from the post-write epoch"
    );
    let m = engine.metrics();
    assert_eq!(m.coalesced, 0, "epoch-skewed identical submissions must not share a flight");
    assert_eq!(m.completed, 2);
    assert_eq!(m.writes, 1);
    assert_eq!(m.epoch, 1);
}

// ---------------------------------------------------------------------
// 4. epoch-aware warmstart

#[test]
fn refused_warmstarts_name_the_drifted_fingerprint_field() {
    let table = car_projected(4).unwrap();
    let prefs = SeededPreferences::complementary(7);
    let dir = std::env::temp_dir().join("presky-mutation-warmstart");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.snap");

    let engine = Engine::new(table.clone(), prefs, EngineOptions::default()).unwrap();
    engine.run(all_sky()).unwrap();
    engine.save_cache_snapshot(&path).unwrap();

    // Identical instance: the snapshot loads and the cache is warm.
    let warm =
        Engine::with_warm_cache(table.clone(), prefs, EngineOptions::default(), &path).unwrap();
    assert!(warm.metrics().cache_entries > 0);

    // Dataset drift (one row removed): refused, and the message blames
    // the dataset half of the key.
    let drifted = Engine::new(table.clone(), prefs, EngineOptions::default()).unwrap();
    drifted.remove_object(ObjectId(0)).unwrap();
    let t2 = drifted.snapshot().table().as_ref().clone();
    let e = Engine::with_warm_cache(t2, prefs, EngineOptions::default(), &path)
        .map(|_| ())
        .unwrap_err()
        .to_string();
    assert!(e.contains("dataset"), "dataset drift must name the dataset field: {e}");
    assert!(!e.contains("preference grid"), "{e}");

    // Preference drift (re-elicited model): refused, blaming the grid.
    let e = Engine::with_warm_cache(
        table,
        SeededPreferences::complementary(8),
        EngineOptions::default(),
        &path,
    )
    .map(|_| ())
    .unwrap_err()
    .to_string();
    assert!(e.contains("preference grid"), "preference drift must name the grid field: {e}");

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 3. incremental invalidation accounting

#[test]
fn preference_edits_evict_exactly_the_signature_touched_slice() {
    let table = car_projected(4).unwrap();
    let prefs = SeededPreferences::complementary(7);
    let engine = Engine::new(table.clone(), prefs, EngineOptions::default()).unwrap();
    engine.run(all_sky()).unwrap();
    let entries_before = engine.metrics().cache_entries as u64;
    assert!(entries_before > 0);

    // Enumerate the resident keys through the public snapshot format,
    // then predict the eviction set the same way the write path does:
    // keys embedding a coin on the edited pair with the *old* bits.
    let dir = std::env::temp_dir().join("presky-mutation-accounting");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.snap");
    engine.save_cache_snapshot(&path).unwrap();
    let resident = load_from_path(&path, engine.fingerprint(), 1 << 30).unwrap().sorted_entries();
    assert_eq!(resident.len() as u64, entries_before);
    std::fs::remove_dir_all(&dir).ok();

    let (dim, a, b) = (DimId(0), ValueId(0), ValueId(1));
    let view = engine.snapshot();
    let old_ab = view.prefs().pr_strict(dim, a, b);
    let old_ba = view.prefs().pr_strict(dim, b, a);
    let (fwd, bwd) = (0.40f64, 0.35f64);
    assert_ne!(old_ab.to_bits(), fwd.to_bits(), "the edit must change the forward direction");
    assert_ne!(old_ba.to_bits(), bwd.to_bits(), "the edit must change the backward direction");
    let touched = [(a.0, old_ab.to_bits()), (b.0, old_ba.to_bits())];
    let expected = resident
        .iter()
        .filter(|(key, _)| {
            signature_coins(key).any(|(d, v, bits)| d == dim.0 && touched.contains(&(v, bits)))
        })
        .count() as u64;

    let receipt = engine.set_preference(dim, a, b, fwd, bwd).unwrap();
    assert_eq!(receipt.evicted_components, expected, "eviction accounting must be exact");
    assert!(expected > 0, "the edited coin appears in cached components");
    assert!(expected < entries_before, "untouched components must survive");
    assert_eq!(engine.metrics().cache_entries as u64, entries_before - expected);

    // The surviving slice keeps the next pass warm …
    let resp = engine.run(all_sky()).unwrap();
    let hit_rate = resp.stats.cache_hits as f64 / resp.stats.cache_probes as f64;
    assert!(hit_rate >= 0.8, "post-edit all-sky hit rate {hit_rate:.3} below 0.8");

    // … where the full-drop baseline starts cold: same edit, whole cache
    // gone, strictly worse hit rate on the next pass.
    let naive =
        Engine::new(table, prefs, EngineOptions::default().with_incremental_invalidation(false))
            .unwrap();
    naive.run(all_sky()).unwrap();
    let naive_before = naive.metrics().cache_entries as u64;
    let receipt = naive.set_preference(dim, a, b, fwd, bwd).unwrap();
    assert_eq!(receipt.evicted_components, naive_before, "full drop clears everything");
    assert_eq!(naive.metrics().cache_entries, 0);
    let resp = naive.run(all_sky()).unwrap();
    let naive_rate = resp.stats.cache_hits as f64 / resp.stats.cache_probes as f64;
    assert!(
        naive_rate < hit_rate,
        "full-drop rate {naive_rate:.3} must trail incremental {hit_rate:.3}"
    );
}

// ---------------------------------------------------------------------
// 1. snapshot isolation (property)

/// One deterministic write against a live engine. Parameters are small
/// indices so every op is valid by construction and replays identically.
#[derive(Debug, Clone)]
enum WriteOp {
    Pref { dim: u8, a: u8, b: u8, fwd: u16, bwd: u16 },
    Insert,
    Remove,
}

fn write_op() -> impl Strategy<Value = WriteOp> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>()).prop_map(
        |(sel, dim, a, b, fwd, bwd)| match sel % 3 {
            0 => WriteOp::Pref { dim, a, b, fwd, bwd },
            1 => WriteOp::Insert,
            _ => WriteOp::Remove,
        },
    )
}

/// A 10-row, 2-dim, 4-value instance: big enough for non-trivial
/// components, small enough that each proptest case replays all-sky over
/// every epoch in microseconds.
fn tiny_table() -> Table {
    let rows: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i % 4, (i / 4) % 4]).collect();
    Table::from_rows_raw(2, &rows).unwrap()
}

/// Apply `op` to `engine`; returns true iff a commit was installed.
/// `fresh` hands out never-seen value codes so inserts cannot collide.
fn apply<M: PreferenceModel + Clone + Sync>(
    engine: &Engine<M>,
    op: &WriteOp,
    fresh: &AtomicU32,
) -> bool {
    match op {
        WriteOp::Pref { dim, a, b, fwd, bwd } => {
            let dim = DimId(u32::from(dim % 2));
            let a = ValueId(u32::from(a % 4));
            let mut b = ValueId(u32::from(b % 4));
            if b == a {
                b = ValueId((b.0 + 1) % 4);
            }
            // Each direction in [0, 0.5]: the pair mass stays legal.
            let fwd = f64::from(*fwd) / f64::from(u16::MAX) * 0.5;
            let bwd = f64::from(*bwd) / f64::from(u16::MAX) * 0.5;
            engine.set_preference(dim, a, b, fwd, bwd).unwrap();
            true
        }
        WriteOp::Insert => {
            let code = 100 + fresh.fetch_add(1, Ordering::Relaxed);
            engine.insert_object(&[ValueId(code), ValueId(code)]).unwrap();
            true
        }
        WriteOp::Remove => {
            let n = engine.n_objects();
            if n <= 2 {
                return false;
            }
            engine.remove_object(ObjectId((n - 1) as u32)).unwrap();
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot isolation, property-tested: a single writer applies a
    /// random op sequence while readers hammer all-sky. Every response
    /// must be bit-identical to the serial answer of the epoch it pinned
    /// — a reader can observe *any* committed epoch, but never a torn
    /// in-between state.
    #[test]
    fn concurrent_readers_match_the_serial_answer_of_their_pinned_epoch(
        ops in proptest::collection::vec(write_op(), 1..6),
    ) {
        let prefs = SeededPreferences::complementary(11);

        // Serial reference: the all-sky value after each commit, indexed
        // by epoch id (ops replay deterministically, so the live engine
        // walks exactly this epoch sequence).
        let serial = Engine::new(tiny_table(), prefs, EngineOptions::default()).unwrap();
        let fresh = AtomicU32::new(0);
        let mut by_epoch: Vec<Value> =
            vec![serial.run(all_sky()).unwrap().outcome.value().clone()];
        for op in &ops {
            if apply(&serial, op, &fresh) {
                by_epoch.push(serial.run(all_sky()).unwrap().outcome.value().clone());
            }
        }

        let engine = Engine::new(tiny_table(), prefs, EngineOptions::default()).unwrap();
        let fresh = AtomicU32::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let engine = &engine;
                    let by_epoch = &by_epoch;
                    let done = &done;
                    scope.spawn(move || {
                        loop {
                            let resp = engine.run(all_sky()).unwrap();
                            assert_eq!(
                                *resp.outcome.value(),
                                by_epoch[resp.epoch as usize],
                                "epoch {} response diverged from its serial answer",
                                resp.epoch
                            );
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    })
                })
                .collect();
            for op in &ops {
                apply(&engine, op, &fresh);
                std::thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
            for r in readers {
                r.join().unwrap();
            }
        });
        prop_assert_eq!(engine.epoch() as usize, by_epoch.len() - 1);
        prop_assert_eq!(engine.metrics().in_flight, 0);
    }
}

// ---------------------------------------------------------------------
// 5. mixed read/write storm (the CI mutation-stress leg)

#[test]
fn eight_thread_mixed_read_write_storm_conserves_accounting_and_state() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 10;
    let table = car_projected(4).unwrap();
    let prefs = SeededPreferences::complementary(7);
    let engine = Engine::new(table, prefs, EngineOptions::default()).unwrap();
    let n0 = engine.n_objects();
    let requests = vec![
        Request::sky_one(ObjectId(0), QueryOptions::default().with_threads(Some(1))),
        Request::all_sky(QueryOptions::default().with_threads(Some(1))),
        Request::threshold(0.05, ThresholdOptions::default().with_threads(Some(1))),
        Request::top_k(5, TopKOptions::default().with_threads(Some(1))),
    ];
    let fresh = AtomicU32::new(0);

    let (reads, commits, losers) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let requests = &requests;
                let fresh = &fresh;
                scope.spawn(move || {
                    let (mut reads, mut commits, mut losers) = (0u64, 0u64, 0u64);
                    for i in 0..OPS_PER_THREAD {
                        if i % 4 == 3 {
                            // A write. Removals keep a wide margin above
                            // the seed size so no read target ever goes
                            // out of range; a removal can still lose a
                            // race for the last row, which surfaces as a
                            // clean error and installs nothing.
                            let outcome = match (t + i) % 3 {
                                0 => engine.set_preference(
                                    DimId((t % 4) as u32),
                                    ValueId((i % 3) as u32),
                                    ValueId((i % 3 + 1) as u32),
                                    0.05 + 0.04 * t as f64,
                                    0.03 + 0.02 * i as f64,
                                ),
                                1 => {
                                    let code = 1_000 + fresh.fetch_add(1, Ordering::Relaxed);
                                    engine.insert_object(&[ValueId(code); 4])
                                }
                                _ => {
                                    let n = engine.n_objects();
                                    if n > n0 {
                                        engine.remove_object(ObjectId((n - 1) as u32))
                                    } else {
                                        let code = 1_000 + fresh.fetch_add(1, Ordering::Relaxed);
                                        engine.insert_object(&[ValueId(code); 4])
                                    }
                                }
                            };
                            match outcome {
                                Ok(_) => commits += 1,
                                Err(_) => losers += 1,
                            }
                        } else {
                            let resp = engine.run(requests[(i + t) % requests.len()].clone());
                            resp.unwrap();
                            reads += 1;
                        }
                    }
                    (reads, commits, losers)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2))
    });

    // Conservation: every read submission lands in exactly one bucket,
    // every successful commit is one epoch, failed writes install nothing.
    let m = engine.metrics();
    assert_eq!(m.requests, reads);
    assert_eq!(m.completed + m.coalesced, reads);
    assert_eq!(m.failed, 0);
    assert_eq!(m.shed(), 0);
    assert_eq!(m.in_flight, 0);
    assert_eq!(m.writes, commits);
    assert_eq!(m.epoch, commits);
    assert!(commits > 0);
    let _ = losers; // racy removals may or may not lose — both are legal

    // Post-storm digest: the live engine's answer over the final state is
    // bit-identical to a cold engine rebuilt from the final snapshot.
    let live = engine.run(all_sky()).unwrap().outcome.value().clone();
    assert_eq!(live, rebuilt_value(&engine), "a write corrupted live state");
}
