#!/bin/sh
# Rustdoc-diff-style gate over the presky-service request surface.
#
# The manifest `ci/request_surface.txt` pins the rendered API of the
# request module — every enum variant and public struct field of
# `Request`, `Response`, `Budget`, `Query`, `Value` and `Outcome` as
# rustdoc publishes them, plus every inherent `pub fn` in request.rs.
# CI diffs the live surface against the manifest, so any change to the
# query family (a new variant, a renamed accessor, a dropped field) has
# to land together with a deliberate manifest update:
#
#   ci/check_request_surface.sh --bless
#
# Only variant/structfield anchors are harvested from the HTML — method
# anchors would drag in the std blanket impls (`Borrow`, `TryFrom`, …),
# which churn with the toolchain; the inherent methods are taken from
# the source instead.
set -eu
cd "$(dirname "$0")/.."
manifest=ci/request_surface.txt
actual=$(mktemp)

cargo doc -p presky-service --no-deps --quiet
{
    for page in struct.Request struct.Response struct.Budget \
                enum.Query enum.Value enum.Outcome; do
        grep -o 'id="\(variant\|structfield\)\.[A-Za-z0-9_]*"' \
            "target/doc/presky_service/request/$page.html" |
            sed -e 's/^id="//' -e 's/"$//' -e "s/^/$page /"
    done | sort -u
    grep -o 'pub fn [a-z_0-9]*' crates/service/src/request.rs |
        sed 's/^/request.rs /' | sort -u
} > "$actual"

if [ "${1:-}" = "--bless" ]; then
    mv "$actual" "$manifest"
    echo "blessed $manifest"
    exit 0
fi

if ! diff -u "$manifest" "$actual"; then
    echo "request surface drifted from ci/request_surface.txt;" \
         "review the change and re-bless with ci/check_request_surface.sh --bless" >&2
    exit 1
fi
echo "request surface matches ci/request_surface.txt"
